//! Sparse-mode sketch: linear memory for small counts, dense past
//! break-even (paper §4.3, last paragraph, and the Figure 10 discussion).
//!
//! [`SparseExaLogLog`] collects distinct hash tokens until their storage
//! would exceed the dense register array, then transparently converts. The
//! estimate is exact-ML in both phases: token-set ML while sparse
//! (Algorithm 7), register ML once dense.

use crate::atomic::AtomicExaLogLog;
use crate::config::{EllConfig, EllError};
use crate::sketch::ExaLogLog;
use crate::token::TokenSet;
use ell_hash::Hasher64;

/// Internal phase of a [`SparseExaLogLog`].
#[derive(Debug, Clone, PartialEq)]
enum Phase {
    Sparse(TokenSet),
    Dense(ExaLogLog),
}

/// Serialization magic for the sparse-capable format.
const SPARSE_MAGIC: &[u8; 4] = b"ELLS";
/// Header: magic + (t, d, p) + v + phase tag.
const SPARSE_HEADER_LEN: usize = 9;

/// An ExaLogLog sketch that starts in sparse (token-collecting) mode and
/// upgrades itself to the dense register representation at the break-even
/// point.
///
/// ```
/// use exaloglog::{EllConfig, SparseExaLogLog};
/// use ell_hash::{Hasher64, WyHash};
///
/// let hasher = WyHash::new(0);
/// let mut sketch = SparseExaLogLog::new(EllConfig::optimal(12).unwrap()).unwrap();
/// sketch.insert_hash(hasher.hash_bytes(b"one user"));
/// assert!(sketch.is_sparse());                  // tiny memory footprint
/// assert!((sketch.estimate() - 1.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseExaLogLog {
    cfg: EllConfig,
    v: u32,
    phase: Phase,
}

impl SparseExaLogLog {
    /// Creates a sparse sketch. Tokens use v = max(p + t, 26) so that the
    /// convenient 32-bit token size is kept whenever it suffices
    /// (the paper singles out v = 26 as "particularly interesting").
    pub fn new(cfg: EllConfig) -> Result<Self, EllError> {
        let v = (u32::from(cfg.p()) + u32::from(cfg.t())).max(26);
        Self::with_token_parameter(cfg, v)
    }

    /// Creates a sparse sketch with an explicit token parameter
    /// (`p + t ≤ v ≤ 58`).
    pub fn with_token_parameter(cfg: EllConfig, v: u32) -> Result<Self, EllError> {
        if v < u32::from(cfg.p()) + u32::from(cfg.t()) {
            return Err(EllError::InvalidParameter {
                reason: format!(
                    "token parameter v = {v} must be at least p + t = {}",
                    u32::from(cfg.p()) + u32::from(cfg.t())
                ),
            });
        }
        Ok(SparseExaLogLog {
            cfg,
            v,
            phase: Phase::Sparse(TokenSet::new(v)?),
        })
    }

    /// The dense-mode configuration this sketch upgrades into.
    #[must_use]
    pub fn config(&self) -> &EllConfig {
        &self.cfg
    }

    /// Whether the sketch is still in the sparse (token) phase.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        matches!(self.phase, Phase::Sparse(_))
    }

    /// The token parameter v used while in the sparse phase.
    #[must_use]
    pub fn token_parameter(&self) -> u32 {
        self.v
    }

    /// Inserts an element by its 64-bit hash, upgrading to dense mode at
    /// the break-even point. Returns whether the state changed.
    pub fn insert_hash(&mut self, hash: u64) -> bool {
        match &mut self.phase {
            Phase::Sparse(tokens) => {
                let changed = tokens.insert_hash(hash);
                // Break-even: once the tight token encoding uses as many
                // bits as the dense register array, convert.
                if tokens.storage_bits() >= self.cfg.register_array_bytes() * 8 {
                    self.densify();
                }
                changed
            }
            Phase::Dense(sketch) => sketch.insert_hash(hash),
        }
    }

    /// Hashes `element` with `hasher` and inserts it.
    pub fn insert<H: Hasher64 + ?Sized>(&mut self, hasher: &H, element: &[u8]) -> bool {
        self.insert_hash(hasher.hash_bytes(element))
    }

    /// Inserts a whole slice of pre-hashed elements, equivalent to
    /// sequential [`SparseExaLogLog::insert_hash`] calls in order.
    ///
    /// While sparse, elements go through the one-by-one path (each insert
    /// may trigger densification); once dense, the remainder of the slice
    /// takes the dense sketch's unrolled batch path.
    pub fn insert_hashes(&mut self, hashes: &[u64]) {
        let mut rest = hashes;
        while !rest.is_empty() {
            if let Phase::Dense(sketch) = &mut self.phase {
                sketch.insert_hashes(rest);
                return;
            }
            self.insert_hash(rest[0]);
            rest = &rest[1..];
        }
    }

    /// Forces conversion to the dense representation, replaying the
    /// recorded hashes through the batched (unrolled) insert path.
    pub fn densify(&mut self) {
        if let Phase::Sparse(tokens) = &self.phase {
            let mut dense = ExaLogLog::new(self.cfg);
            dense.extend_hashes(tokens.hashes());
            self.phase = Phase::Dense(dense);
        }
    }

    /// Whether the sketch has recorded no element at all (in either
    /// phase).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match &self.phase {
            Phase::Sparse(tokens) => tokens.is_empty(),
            Phase::Dense(sketch) => sketch.is_empty(),
        }
    }

    /// Resets the sketch to the empty state while keeping its backing
    /// allocations: a sparse phase clears its token vector (capacity
    /// retained), a dense phase zeroes its register array in place and
    /// stays dense. Merging a reset dense sketch costs one word-level
    /// zero scan, so reused delta buffers stay cheap either way.
    pub fn reset(&mut self) {
        match &mut self.phase {
            Phase::Sparse(tokens) => tokens.clear(),
            Phase::Dense(sketch) => sketch.clear(),
        }
    }

    /// The ML distinct-count estimate (token ML while sparse, register ML
    /// with bias correction when dense).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        match &self.phase {
            Phase::Sparse(tokens) => tokens.estimate(),
            Phase::Dense(sketch) => sketch.estimate(),
        }
    }

    /// Merges another sparse/dense sketch with the same configuration and
    /// token parameter.
    pub fn merge_from(&mut self, other: &SparseExaLogLog) -> Result<(), EllError> {
        if self.cfg != *other.config() || self.v != other.v {
            return Err(EllError::IncompatibleSketches {
                reason: format!(
                    "{} (v={}) vs {} (v={})",
                    self.cfg, self.v, other.cfg, other.v
                ),
            });
        }
        match (&mut self.phase, &other.phase) {
            (Phase::Sparse(a), Phase::Sparse(b)) => {
                a.merge_from(b)?;
                if a.storage_bits() >= self.cfg.register_array_bytes() * 8 {
                    self.densify();
                }
                Ok(())
            }
            (Phase::Dense(a), Phase::Dense(b)) => a.merge_from(b),
            (Phase::Dense(a), Phase::Sparse(b)) => {
                for h in b.hashes() {
                    a.insert_hash(h);
                }
                Ok(())
            }
            (Phase::Sparse(_), Phase::Dense(b)) => {
                self.densify();
                if let Phase::Dense(a) = &mut self.phase {
                    a.merge_from(b)
                } else {
                    unreachable!("densify always produces the dense phase")
                }
            }
        }
    }

    /// Folds this sketch into a dense accumulator of the same
    /// configuration without materializing a dense copy: a dense phase
    /// merges register-wise (word-scan fast path), a sparse phase streams
    /// its decoded token hashes through the accumulator's batched insert
    /// path. The result equals `acc.merge_from(&self.clone().into_dense())`
    /// minus the scratch allocation.
    ///
    /// # Errors
    ///
    /// Fails when configurations differ.
    pub fn merge_into_dense(&self, acc: &mut ExaLogLog) -> Result<(), EllError> {
        if self.cfg != *acc.config() {
            return Err(EllError::IncompatibleSketches {
                reason: format!("{} vs {}", self.cfg, acc.config()),
            });
        }
        match &self.phase {
            Phase::Sparse(tokens) => {
                acc.extend_hashes(tokens.hashes());
                Ok(())
            }
            Phase::Dense(sketch) => acc.merge_from(sketch),
        }
    }

    /// Folds this sketch into a lock-free atomic accumulator of the same
    /// configuration: a dense phase merges register-wise (word-scan over
    /// nonzero registers, CAS per hit), a sparse phase replays its decoded
    /// token hashes through the atomic insert path. Because register
    /// updates are monotone, the result is bit-identical to inserting the
    /// original hash stream directly — this is the keyed store's
    /// buffered-delta flush into hot slots.
    ///
    /// # Errors
    ///
    /// Fails when configurations differ.
    pub fn merge_into_atomic(&self, acc: &AtomicExaLogLog) -> Result<(), EllError> {
        if self.cfg != *acc.config() {
            return Err(EllError::IncompatibleSketches {
                reason: format!("{} vs {}", self.cfg, acc.config()),
            });
        }
        match &self.phase {
            Phase::Sparse(tokens) => {
                for h in tokens.hashes() {
                    acc.insert_hash(h);
                }
                Ok(())
            }
            Phase::Dense(sketch) => acc.merge_from(sketch),
        }
    }

    /// Extracts the dense sketch (densifying first if needed).
    #[must_use]
    pub fn into_dense(mut self) -> ExaLogLog {
        self.densify();
        match self.phase {
            Phase::Dense(sketch) => sketch,
            Phase::Sparse(_) => unreachable!("densify always produces the dense phase"),
        }
    }

    /// Serializes the sketch: `"ELLS"`, the (t, d, p) triple, the token
    /// parameter v, a phase tag, then the phase payload (the token-set or
    /// dense-sketch byte format, each self-describing).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(SPARSE_MAGIC);
        out.extend_from_slice(&[self.cfg.t(), self.cfg.d(), self.cfg.p()]);
        out.push(self.v as u8); // v ≤ 58 by construction
        match &self.phase {
            Phase::Sparse(tokens) => {
                out.push(0);
                out.extend_from_slice(&tokens.to_bytes());
            }
            Phase::Dense(sketch) => {
                out.push(1);
                out.extend_from_slice(&sketch.to_bytes());
            }
        }
        out
    }

    /// Deserializes a sketch produced by [`SparseExaLogLog::to_bytes`],
    /// validating the header, the phase payload, and the consistency of
    /// the embedded configuration.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EllError> {
        let corrupt = |reason: String| EllError::CorruptSerialization { reason };
        if bytes.len() < SPARSE_HEADER_LEN {
            return Err(corrupt(format!(
                "{} bytes is shorter than the sparse header",
                bytes.len()
            )));
        }
        if &bytes[..4] != SPARSE_MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let cfg = EllConfig::new(bytes[4], bytes[5], bytes[6])?;
        let v = u32::from(bytes[7]);
        let phase_tag = bytes[8];
        let payload = &bytes[SPARSE_HEADER_LEN..];
        let mut sketch = SparseExaLogLog::with_token_parameter(cfg, v)?;
        match phase_tag {
            0 => {
                let tokens = TokenSet::from_bytes(payload)?;
                if tokens.v() != v {
                    return Err(corrupt(format!(
                        "token parameter mismatch: header v={v}, payload v={}",
                        tokens.v()
                    )));
                }
                sketch.phase = Phase::Sparse(tokens);
            }
            1 => {
                let dense = ExaLogLog::from_bytes(payload)?;
                if dense.config() != &cfg {
                    return Err(corrupt(format!(
                        "configuration mismatch: header {cfg}, payload {}",
                        dense.config()
                    )));
                }
                sketch.phase = Phase::Dense(dense);
            }
            other => return Err(corrupt(format!("unknown phase tag {other}"))),
        }
        Ok(sketch)
    }

    /// Current memory footprint in bytes: token storage while sparse, the
    /// register array once dense. This produces the memory-vs-n curve of
    /// Figure 10 for sparse-capable sketches.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>()
            + match &self.phase {
                Phase::Sparse(tokens) => tokens.len() * core::mem::size_of::<u64>(),
                Phase::Dense(sketch) => sketch.register_bytes().len(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ell_hash::SplitMix64;

    fn cfg() -> EllConfig {
        EllConfig::optimal(10).unwrap()
    }

    #[test]
    fn starts_sparse_upgrades_dense() {
        let mut s = SparseExaLogLog::new(cfg()).unwrap();
        assert!(s.is_sparse());
        let mut rng = SplitMix64::new(1);
        // Dense array = 3584 bytes = 28672 bits; tokens are 32 bits →
        // break-even at 896 tokens.
        for _ in 0..895 {
            s.insert_hash(rng.next_u64());
        }
        assert!(s.is_sparse());
        for _ in 0..10 {
            s.insert_hash(rng.next_u64());
        }
        assert!(!s.is_sparse(), "sketch must have densified at break-even");
    }

    #[test]
    fn estimate_continuous_across_conversion() {
        let mut s = SparseExaLogLog::new(cfg()).unwrap();
        let mut rng = SplitMix64::new(2);
        let mut last_sparse_est = 0.0;
        let mut first_dense_est = None;
        let mut n = 0;
        while first_dense_est.is_none() {
            s.insert_hash(rng.next_u64());
            n += 1;
            if s.is_sparse() {
                last_sparse_est = s.estimate();
            } else {
                first_dense_est = Some(s.estimate());
            }
        }
        let dense = first_dense_est.unwrap();
        assert!(
            (dense - last_sparse_est).abs() < 0.1 * n as f64,
            "estimate jumped across densification: {last_sparse_est} → {dense}"
        );
    }

    #[test]
    fn dense_conversion_matches_direct_recording() {
        // The sparse → dense conversion must produce exactly the sketch
        // direct dense recording would have produced (token losslessness
        // for p + t ≤ v).
        let c = EllConfig::new(2, 20, 8).unwrap();
        let mut sparse = SparseExaLogLog::new(c).unwrap();
        let mut direct = ExaLogLog::new(c);
        let mut rng = SplitMix64::new(3);
        for _ in 0..5000 {
            let h = rng.next_u64();
            sparse.insert_hash(h);
            direct.insert_hash(h);
        }
        assert_eq!(sparse.into_dense(), direct);
    }

    #[test]
    fn sparse_memory_grows_linearly_then_caps() {
        let mut s = SparseExaLogLog::new(cfg()).unwrap();
        let mut rng = SplitMix64::new(4);
        let m0 = s.memory_bytes();
        for _ in 0..100 {
            s.insert_hash(rng.next_u64());
        }
        let m100 = s.memory_bytes();
        assert!(m100 > m0, "sparse memory must grow with tokens");
        for _ in 0..10_000 {
            s.insert_hash(rng.next_u64());
        }
        let dense_size = s.memory_bytes();
        for _ in 0..10_000 {
            s.insert_hash(rng.next_u64());
        }
        assert_eq!(s.memory_bytes(), dense_size, "dense memory is constant");
    }

    #[test]
    fn merge_all_phase_combinations() {
        // p = 8: dense array is 768 bytes = 6144 bits, so 50 32-bit tokens
        // stay comfortably sparse while 40k inserts force dense mode.
        let c = EllConfig::new(2, 16, 8).unwrap();
        let mut rng = SplitMix64::new(5);
        let hs_a: Vec<u64> = (0..50).map(|_| rng.next_u64()).collect();
        let hs_b: Vec<u64> = (0..40_000).map(|_| rng.next_u64()).collect();

        let build = |hashes: &[u64]| {
            let mut s = SparseExaLogLog::new(c).unwrap();
            for &h in hashes {
                s.insert_hash(h);
            }
            s
        };
        let small_a = build(&hs_a); // sparse
        let big_b = build(&hs_b); // dense
        assert!(small_a.is_sparse());
        assert!(!big_b.is_sparse());

        // sparse ← sparse
        let mut x = build(&hs_a);
        x.merge_from(&build(&hs_a[..20])).unwrap();
        assert!((x.estimate() - 50.0).abs() < 2.0);
        // sparse ← dense
        let mut x = build(&hs_a);
        x.merge_from(&big_b).unwrap();
        let direct: f64 = {
            let mut d = build(&hs_a);
            for &h in &hs_b {
                d.insert_hash(h);
            }
            d.estimate()
        };
        assert!((x.estimate() / direct - 1.0).abs() < 1e-9);
        // dense ← sparse
        let mut x = build(&hs_b);
        x.merge_from(&small_a).unwrap();
        assert!((x.estimate() / direct - 1.0).abs() < 1e-9);
        // dense ← dense
        let mut x = build(&hs_b);
        x.merge_from(&build(&hs_b[..10_000])).unwrap();
        assert!((x.estimate() / 40_000.0 - 1.0).abs() < 0.1);
    }

    #[test]
    fn rejects_incompatible_merge() {
        let a = SparseExaLogLog::new(EllConfig::new(2, 20, 8).unwrap()).unwrap();
        let mut b = SparseExaLogLog::new(EllConfig::new(2, 20, 9).unwrap()).unwrap();
        assert!(b.merge_from(&a).is_err());
    }

    #[test]
    fn serialization_roundtrips_in_both_phases() {
        let c = EllConfig::new(2, 16, 8).unwrap();
        let mut rng = SplitMix64::new(9);
        // Sparse phase.
        let mut sparse = SparseExaLogLog::new(c).unwrap();
        for _ in 0..40 {
            sparse.insert_hash(rng.next_u64());
        }
        assert!(sparse.is_sparse());
        let back = SparseExaLogLog::from_bytes(&sparse.to_bytes()).unwrap();
        assert_eq!(back, sparse);
        // Dense phase.
        for _ in 0..40_000 {
            sparse.insert_hash(rng.next_u64());
        }
        assert!(!sparse.is_sparse());
        let back = SparseExaLogLog::from_bytes(&sparse.to_bytes()).unwrap();
        assert_eq!(back, sparse);
        // Corruption is rejected.
        let mut bad = sparse.to_bytes();
        bad[0] ^= 0xff;
        assert!(SparseExaLogLog::from_bytes(&bad).is_err());
        let mut bad = sparse.to_bytes();
        bad[8] = 7; // unknown phase tag
        assert!(SparseExaLogLog::from_bytes(&bad).is_err());
        assert!(SparseExaLogLog::from_bytes(&sparse.to_bytes()[..5]).is_err());
    }

    #[test]
    fn batched_insert_matches_sequential_across_densification() {
        // The batch straddles the break-even point, so the batch path
        // must densify mid-slice exactly like sequential insertion.
        let c = EllConfig::new(2, 16, 6).unwrap();
        let mut rng = SplitMix64::new(10);
        let hashes: Vec<u64> = (0..5000).map(|_| rng.next_u64()).collect();
        let mut seq = SparseExaLogLog::new(c).unwrap();
        for &h in &hashes {
            seq.insert_hash(h);
        }
        let mut bat = SparseExaLogLog::new(c).unwrap();
        bat.insert_hashes(&hashes);
        assert_eq!(seq, bat);
        assert!(!bat.is_sparse());
    }

    #[test]
    fn token_parameter_validation() {
        let c = EllConfig::new(2, 20, 8).unwrap();
        assert!(SparseExaLogLog::with_token_parameter(c, 9).is_err()); // < p+t
        assert!(SparseExaLogLog::with_token_parameter(c, 10).is_ok());
        assert!(SparseExaLogLog::with_token_parameter(c, 59).is_err());
    }
}
