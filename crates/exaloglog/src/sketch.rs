//! The ExaLogLog sketch.
//!
//! State: m = 2^p registers of `6 + t + d` bits, packed into one byte
//! array. Inserting an element consumes one 64-bit hash (Algorithm 2):
//! bits `t..p+t−1` select a register, the number of leading zeros of the
//! remaining high bits together with the low `t` bits form the update
//! value of equation (9). The bit order is deliberate — the NLZ region
//! sits directly above the register-address region, which is what makes
//! precision reduction (Algorithm 6) lossless.
//!
//! All mutating operations are allocation-free; insertion is O(1) plus
//! amortized-O(1) incremental bookkeeping of the ML coefficients (so
//! [`ExaLogLog::estimate`] never rescans the registers). Merging scans
//! the register arrays word-wise — runs of empty or identical words are
//! skipped wholesale — and reduction is O(m).

use crate::config::{EllConfig, EllError};
use crate::ml::{self, MlCoefficients};
use crate::registers;
use crate::theory;
use ell_bitpack::kernels::{self, Kernel, RunClass};
use ell_bitpack::{mask, PackedArray};
use ell_hash::Hasher64;

/// Serialization magic: identifies the format and its version.
const MAGIC: &[u8; 4] = b"ELL1";
/// Serialization header size: magic + (t, d, p).
const HEADER_LEN: usize = 7;

/// A record of one register mutation, as reported by
/// [`ExaLogLog::insert_hash_tracked`]. The martingale estimator consumes
/// these to maintain the state-change probability incrementally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterChange {
    /// Index of the modified register.
    pub index: usize,
    /// Register value before the update.
    pub old: u64,
    /// Register value after the update (`new > old`).
    pub new: u64,
}

/// The ExaLogLog distinct-count sketch (paper §2.3).
///
/// ```
/// use exaloglog::{EllConfig, ExaLogLog};
/// use ell_hash::{Hasher64, WyHash};
///
/// let hasher = WyHash::new(0);
/// let mut sketch = ExaLogLog::new(EllConfig::optimal(10).unwrap());
/// for i in 0..10_000u32 {
///     sketch.insert_hash(hasher.hash_bytes(&i.to_le_bytes()));
/// }
/// let estimate = sketch.estimate();
/// assert!((estimate / 10_000.0 - 1.0).abs() < 0.05);
/// ```
///
/// # The incremental estimator cache
///
/// Alongside the registers, the sketch maintains the Algorithm 3
/// log-likelihood coefficients (α, β) incrementally: every register
/// change moves exactly that register's probability mass between α and β
/// in exact integer arithmetic, so [`ExaLogLog::estimate`] solves the ML
/// equation directly — O(number of populated β levels) — instead of
/// rescanning all m registers. The cached coefficients are always
/// bit-identical to a fresh [`ExaLogLog::coefficients_scan`] (asserted in
/// debug builds). Bulk register overwrites that bypass the update
/// algebra (the entropy decoder, atomic snapshots) drop the cache; in
/// that window `estimate` transparently falls back to the scan, and
/// [`ExaLogLog::refresh_coefficients`] restores cached operation.
/// Deserialization ([`ExaLogLog::from_bytes`],
/// [`crate::compress::decompress`]) rebuilds the cache eagerly, so
/// loaded sketches estimate at cached speed from the first call.
pub struct ExaLogLog {
    cfg: EllConfig,
    regs: PackedArray,
    /// Incrementally maintained ML coefficients; `None` after a raw
    /// register overwrite invalidated them. Boxed so the sketch itself
    /// stays small and moves cheaply.
    coeffs: Option<Box<MlCoefficients>>,
}

impl Clone for ExaLogLog {
    fn clone(&self) -> Self {
        ExaLogLog {
            cfg: self.cfg,
            regs: self.regs.clone(),
            coeffs: self.coeffs.clone(),
        }
    }

    /// Overwrites `self` in place without reallocating when the register
    /// buffer and coefficient box already exist — the hot shape for a
    /// scratch sketch repeatedly reset to an accumulator template.
    fn clone_from(&mut self, source: &Self) {
        self.cfg = source.cfg;
        self.regs.clone_from(&source.regs);
        match (&mut self.coeffs, &source.coeffs) {
            (Some(mine), Some(theirs)) => mine.as_mut().clone_from(theirs),
            (mine, theirs) => *mine = theirs.clone(),
        }
    }
}

/// Sketch equality is defined by configuration and register state; the
/// coefficient cache is derived data and never participates.
impl PartialEq for ExaLogLog {
    fn eq(&self, other: &Self) -> bool {
        self.cfg == other.cfg && self.regs == other.regs
    }
}

impl Eq for ExaLogLog {}

impl ExaLogLog {
    /// Creates an empty sketch.
    #[must_use]
    pub fn new(cfg: EllConfig) -> Self {
        ExaLogLog {
            regs: PackedArray::new(cfg.register_width(), cfg.m()),
            coeffs: Some(Box::new(ml::empty_coefficients(cfg.m()))),
            cfg,
        }
    }

    /// Builds a sketch around an already validated register array,
    /// computing the coefficient cache with one Algorithm 3 scan.
    fn from_valid_parts(cfg: EllConfig, regs: PackedArray) -> Self {
        let coeffs = Some(Box::new(ml::compute_coefficients(&cfg, regs.iter())));
        ExaLogLog { cfg, regs, coeffs }
    }

    /// Creates an empty sketch from raw parameters.
    pub fn with_params(t: u8, d: u8, p: u8) -> Result<Self, EllError> {
        Ok(Self::new(EllConfig::new(t, d, p)?))
    }

    /// This sketch's configuration.
    #[inline]
    #[must_use]
    pub fn config(&self) -> &EllConfig {
        &self.cfg
    }

    /// Splits a hash into (register index, update value) per Algorithm 2 /
    /// equation (9).
    #[inline]
    #[must_use]
    pub fn decompose_hash(&self, h: u64) -> (usize, u64) {
        let t = u32::from(self.cfg.t());
        let p = u32::from(self.cfg.p());
        let i = ((h >> t) as usize) & (self.cfg.m() - 1);
        // Setting the low p+t bits to one caps the NLZ at 64−p−t.
        let a = h | mask(p + t);
        let nlz = u64::from(a.leading_zeros());
        let k = (nlz << t) + (h & mask(t)) + 1;
        (i, k)
    }

    /// Inserts an element by its 64-bit hash. Returns whether the state
    /// changed (`false` for duplicates and uninformative updates).
    ///
    /// Constant time; no allocation; a handful of arithmetic instructions
    /// plus one packed-register read-modify-write.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) -> bool {
        self.insert_hash_tracked(h).is_some()
    }

    /// Like [`ExaLogLog::insert_hash`] but reports the register mutation,
    /// enabling incremental bookkeeping such as martingale estimation.
    #[inline]
    pub fn insert_hash_tracked(&mut self, h: u64) -> Option<RegisterChange> {
        let (i, k) = self.decompose_hash(h);
        let old = self.regs.get(i);
        let new = registers::update(old, k, self.cfg.d());
        if new != old {
            self.regs.set(i, new);
            if let Some(c) = self.coeffs.as_deref_mut() {
                ml::apply_register_change(c, &self.cfg, old, new);
            }
            Some(RegisterChange { index: i, old, new })
        } else {
            None
        }
    }

    /// Hashes `element` with `hasher` and inserts it.
    #[inline]
    pub fn insert<H: Hasher64 + ?Sized>(&mut self, hasher: &H, element: &[u8]) -> bool {
        self.insert_hash(hasher.hash_bytes(element))
    }

    /// Applies an update with value `k` directly to register `i` — the
    /// register-update step of Algorithm 2 without the hash decomposition.
    ///
    /// This is the entry point for event-driven simulation (paper §5.1:
    /// the fast strategy replays sampled (register, update value) events),
    /// and equals what [`ExaLogLog::insert_hash`] would do for any hash
    /// decomposing to `(i, k)`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ m` or `k` is outside `[1, max_update_value]`.
    #[inline]
    pub fn apply_update(&mut self, i: usize, k: u64) -> Option<RegisterChange> {
        assert!(
            k >= 1 && k <= self.cfg.max_update_value(),
            "update value {k} outside [1, {}]",
            self.cfg.max_update_value()
        );
        let old = self.regs.get(i);
        let new = registers::update(old, k, self.cfg.d());
        if new != old {
            self.regs.set(i, new);
            if let Some(c) = self.coeffs.as_deref_mut() {
                ml::apply_register_change(c, &self.cfg, old, new);
            }
            Some(RegisterChange { index: i, old, new })
        } else {
            None
        }
    }

    /// Value of register `i`.
    #[inline]
    #[must_use]
    pub fn register(&self, i: usize) -> u64 {
        self.regs.get(i)
    }

    /// Overwrites register `i` without invariant checks — used by the
    /// entropy decoder and atomic snapshots, which reconstruct registers
    /// they have themselves produced from valid states. Drops the
    /// coefficient cache (these are bulk overwrites; one scan on the next
    /// estimate beats per-write bookkeeping).
    #[inline]
    pub(crate) fn set_register_unchecked(&mut self, i: usize, r: u64) {
        self.regs.set(i, r);
        self.coeffs = None;
    }

    /// Iterates over all m register values.
    pub fn registers(&self) -> impl Iterator<Item = u64> + '_ {
        self.regs.iter()
    }

    /// Calls `f(index, value)` for every nonzero register in index order,
    /// scanning the packed array word-wise so runs of empty registers
    /// cost one 64-bit comparison each. This is the fast iteration shape
    /// for folding a mostly-empty sketch into something else (the atomic
    /// sketch and the keyed store build on it).
    pub fn for_each_nonzero_register(&self, f: impl FnMut(usize, u64)) {
        self.regs.for_each_nonzero(f);
    }

    /// The name of the active register-storage backend (`"u8"`, `"u16"`,
    /// `"u24"`, `"u32"`, `"u64"`, or `"generic"`). Byte-aligned register
    /// widths get direct load/store access paths; other widths use the
    /// generic shifted-window path.
    #[must_use]
    pub fn storage_backend(&self) -> &'static str {
        self.regs.backend_name()
    }

    /// Pins register storage to the generic shifted-window access path
    /// even when the width is byte-aligned. State and serialization are
    /// unaffected — this exists so benchmarks and property tests can
    /// measure and verify the width-specialized backends against the
    /// generic one.
    pub fn force_generic_storage(&mut self) {
        self.regs.force_generic();
    }

    /// Whether no element has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_all_zero()
    }

    /// Resets the sketch to its empty state without reallocating.
    pub fn clear(&mut self) {
        self.regs.clear();
        self.coeffs = Some(Box::new(ml::empty_coefficients(self.cfg.m())));
    }

    /// Merges register `i` of `other` into register `i` of `self`,
    /// keeping the coefficient cache in step when present.
    #[inline]
    fn merge_register_at(&mut self, i: usize, other: &Self) {
        self.merge_register_value(i, other.regs.get(i));
    }

    /// Merges an externally supplied (valid, same-configuration) register
    /// value into register `i` — the building block for folding
    /// non-`PackedArray` representations (atomic registers, token lists)
    /// into a dense accumulator without materializing a scratch sketch.
    #[inline]
    pub(crate) fn merge_register_value(&mut self, i: usize, incoming: u64) {
        let old = self.regs.get(i);
        let merged = registers::merge(old, incoming, self.cfg.d());
        if merged != old {
            self.regs.set(i, merged);
            if let Some(c) = self.coeffs.as_deref_mut() {
                ml::apply_register_change(c, &self.cfg, old, merged);
            }
        }
    }

    /// In-place merge: afterwards `self` represents the union of both
    /// element multisets. Requires identical (t, d, p); for sketches that
    /// differ in d or p use [`ExaLogLog::merged_with`].
    ///
    /// The merge scans the two register arrays as 64-bit words through
    /// the active scan kernel (see [`kernels::active`]) and skips whole
    /// runs that cannot change `self` — words that are zero in `other`
    /// (nothing to contribute) or bit-identical in both sketches
    /// (register merge is idempotent) — before falling back to
    /// [`registers::merge`] per remaining register. For register widths
    /// dividing 64, differing runs batch-decode a whole incoming word at
    /// a time (mask-and-`trailing_zeros` lane extraction) instead of one
    /// `get` per register. Merging a sparse sketch into a dense one, or a
    /// sketch into itself, therefore runs at near-`memcmp` speed.
    /// Registers straddling the boundary between differently-classified
    /// word runs are always merged individually, which keeps the scan
    /// exact for non-word-aligned register widths (property-tested
    /// against [`ExaLogLog::merge_from_per_register`]).
    pub fn merge_from(&mut self, other: &Self) -> Result<(), EllError> {
        self.merge_from_with_kernel(other, kernels::active())
    }

    /// [`ExaLogLog::merge_from`] under an explicit scan [`Kernel`].
    ///
    /// Every kernel produces a bit-identical merged sketch (enforced by
    /// property tests); this entry point exists so benchmarks and the
    /// kernel test matrix can compare kernels within one process.
    pub fn merge_from_with_kernel(&mut self, other: &Self, kernel: Kernel) -> Result<(), EllError> {
        if self.cfg != other.cfg {
            return Err(EllError::IncompatibleSketches {
                reason: format!("{} vs {}", self.cfg, other.cfg),
            });
        }
        let width = self.cfg.register_width() as usize;
        let m = self.cfg.m();
        // Registers are word-aligned lanes when the width divides 64;
        // only then can a differing run batch-decode whole words.
        let lanes_per_word = if 64 % width == 0 {
            Some(64 / width)
        } else {
            None
        };
        // `next` = first register index not yet merged or proven
        // unaffected. Earlier runs may mutate `self`'s words; the cursor
        // may then classify a later word from a stale load, which is
        // harmless: a skip decision is justified per register (equal
        // registers are untouched by neighbouring-register writes, and
        // zero incoming registers contribute nothing), and a stale `Diff`
        // only re-merges idempotently.
        let mut next = 0usize;
        let mut cursor = kernels::RunCursor::new(kernel);
        while let Some(run) = cursor.next_run(self.regs.words(), other.regs.words()) {
            let start_bit = run.start * 64;
            let end_bit = run.end * 64;
            if run.class == RunClass::Diff {
                // Merge every register starting before the run's end.
                let hi = end_bit.div_ceil(width).min(m);
                if let Some(lanes) = lanes_per_word {
                    // Aligned widths: run boundaries are register
                    // boundaries, so the run is exactly registers
                    // [next, hi) and each incoming word decodes by lane
                    // extraction; zero incoming lanes merge as no-ops and
                    // are skipped outright.
                    debug_assert_eq!(next.min(m), (start_bit / width).min(m));
                    let theirs = other.regs.words();
                    let width = width as u32;
                    for w in run.start..run.end {
                        let base = w * lanes;
                        if base >= m {
                            break;
                        }
                        kernels::for_each_nonzero_lane(theirs.word(w), width, |lane, incoming| {
                            debug_assert!(base + lane < m, "nonzero padding lane");
                            self.merge_register_value(base + lane, incoming);
                        });
                    }
                } else {
                    for i in next..hi {
                        self.merge_register_at(i, other);
                    }
                }
                next = next.max(hi);
            } else {
                // Registers fully inside a skip run are unaffected; the
                // stragglers reaching in from the previous run boundary
                // (possibly spanning skip runs of *different* classes,
                // where neither skip argument applies) are merged.
                let lo = start_bit.div_ceil(width).min(m);
                for i in next..lo {
                    self.merge_register_at(i, other);
                }
                next = next.max(lo).max((end_bit / width).min(m));
            }
        }
        for i in next..m {
            self.merge_register_at(i, other);
        }
        Ok(())
    }

    /// Reference register-by-register merge — the pre-word-scan code
    /// path, kept as the behavioral baseline for property tests and the
    /// `bench_registers` comparison. Produces bit-identical results to
    /// [`ExaLogLog::merge_from`].
    pub fn merge_from_per_register(&mut self, other: &Self) -> Result<(), EllError> {
        if self.cfg != other.cfg {
            return Err(EllError::IncompatibleSketches {
                reason: format!("{} vs {}", self.cfg, other.cfg),
            });
        }
        for i in 0..self.cfg.m() {
            self.merge_register_at(i, other);
        }
        Ok(())
    }

    /// Merges two sketches that may differ in `d` and `p` (but share `t`):
    /// both are first reduced to the common parameters
    /// (t, min(d, d'), min(p, p')) as described in paper §4.1, then merged
    /// register-wise. Returns the merged sketch.
    pub fn merged_with(&self, other: &Self) -> Result<Self, EllError> {
        if self.cfg.t() != other.cfg.t() {
            return Err(EllError::IncompatibleSketches {
                reason: format!("cannot merge t={} with t={}", self.cfg.t(), other.cfg.t()),
            });
        }
        let d = self.cfg.d().min(other.cfg.d());
        let p = self.cfg.p().min(other.cfg.p());
        let mut a = self.reduce(d, p)?;
        let b = other.reduce(d, p)?;
        a.merge_from(&b)?;
        Ok(a)
    }

    /// Losslessly reduces the sketch to smaller parameters d' ≤ d, p' ≤ p
    /// (Algorithm 6). The result is *identical* to the sketch that direct
    /// recording of the same elements with the reduced parameters would
    /// have produced, so reduced sketches remain mergeable with old data.
    pub fn reduce(&self, d_new: u8, p_new: u8) -> Result<Self, EllError> {
        let cfg_new = EllConfig::new(self.cfg.t(), d_new, p_new)?;
        if d_new > self.cfg.d() || p_new > self.cfg.p() {
            return Err(EllError::InvalidParameter {
                reason: format!(
                    "reduction cannot grow parameters: d {} → {d_new}, p {} → {p_new}",
                    self.cfg.d(),
                    self.cfg.p()
                ),
            });
        }
        let t = u64::from(self.cfg.t());
        let p = self.cfg.p();
        let d_shift = u32::from(self.cfg.d() - d_new);
        let m_new = cfg_new.m();
        let fold = 1usize << (p - p_new);
        // Smallest update value whose NLZ part was saturated at the old
        // precision: a = (64 − t − p)·2^t + 1.
        let a = ((64 - t - u64::from(p)) << t) + 1;
        let mut regs = PackedArray::new(cfg_new.register_width(), m_new);
        for i in 0..m_new {
            let mut acc = 0u64;
            for j in 0..fold {
                let mut r = self.regs.get(i + j * m_new) >> d_shift;
                let u = r >> d_new;
                if u >= a {
                    // The NLZ was saturated, so the freed address bits `j`
                    // extend the run of leading zeros at precision p'.
                    let field = u32::from(p - p_new);
                    let bitlen = 64 - (j as u64).leading_zeros();
                    let s = u64::from(field.saturating_sub(bitlen)) << t;
                    if s > 0 {
                        // Indicator bits for non-saturated values (below
                        // position v) drop by s relative to the new
                        // maximum; saturated ones shift along with it.
                        let v = i64::from(d_new) + a as i64 - u as i64;
                        if v > 0 {
                            let v = v as u32;
                            let low = r & mask(v);
                            let kept = (r >> v) << v;
                            let moved = if s < 64 { low >> s } else { 0 };
                            r = kept | moved;
                        }
                        r += s << d_new;
                    }
                }
                acc = registers::merge(r, acc, d_new);
            }
            regs.set(i, acc);
        }
        Ok(ExaLogLog::from_valid_parts(cfg_new, regs))
    }

    /// The bias-corrected maximum-likelihood estimate of the number of
    /// distinct inserted elements (equations (19) and (4)).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let c = theory::bias_correction_c(self.cfg.t(), self.cfg.d());
        self.estimate_ml_raw() / (1.0 + c / self.cfg.m() as f64)
    }

    /// The raw ML estimate n̂_ML without the first-order bias correction.
    ///
    /// Solves the ML equation from the incrementally maintained
    /// coefficients in O(populated β levels); only a sketch whose cache
    /// was dropped by a raw register overwrite pays the O(m·d)
    /// Algorithm 3 scan.
    #[must_use]
    pub fn estimate_ml_raw(&self) -> f64 {
        let m = self.cfg.m() as f64;
        match &self.coeffs {
            Some(c) => {
                debug_assert_eq!(
                    **c,
                    self.coefficients_scan(),
                    "cached ML coefficients diverged from the Algorithm 3 scan"
                );
                ml::ml_estimate_from_coefficients(c, m)
            }
            None => ml::ml_estimate_from_coefficients(&self.coefficients_scan(), m),
        }
    }

    /// The log-likelihood coefficients (α, β) of this state (Algorithm 3)
    /// — served from the incremental cache when it is live, recomputed
    /// otherwise.
    #[must_use]
    pub fn coefficients(&self) -> MlCoefficients {
        match &self.coeffs {
            Some(c) => {
                debug_assert_eq!(
                    **c,
                    self.coefficients_scan(),
                    "cached ML coefficients diverged from the Algorithm 3 scan"
                );
                (**c).clone()
            }
            None => self.coefficients_scan(),
        }
    }

    /// The log-likelihood coefficients computed from scratch with the full
    /// O(m·d) register scan of Algorithm 3, regardless of cache state.
    /// This is the reference path the incremental cache is verified
    /// against (and the baseline `bench_registers` measures).
    #[must_use]
    pub fn coefficients_scan(&self) -> MlCoefficients {
        ml::compute_coefficients(&self.cfg, self.regs.iter())
    }

    /// Whether the incremental coefficient cache is live (it is for every
    /// sketch built through the public insert/merge API; raw register
    /// overwrites drop it).
    #[must_use]
    pub fn has_cached_coefficients(&self) -> bool {
        self.coeffs.is_some()
    }

    /// Rebuilds the coefficient cache with one Algorithm 3 scan, making
    /// subsequent [`ExaLogLog::estimate`] calls O(populated β levels)
    /// again after bulk raw-register surgery dropped the cache.
    pub fn refresh_coefficients(&mut self) {
        self.coeffs = Some(Box::new(self.coefficients_scan()));
    }

    /// The probability μ that inserting a new (unseen) element changes the
    /// state (equation (23)), computed from scratch in O(m·d).
    #[must_use]
    pub fn state_change_probability(&self) -> f64 {
        self.regs
            .iter()
            .map(|r| registers::change_probability(&self.cfg, r))
            .sum()
    }

    /// The raw register array — exactly the `⌈m·(6+t+d)/8⌉` bytes the
    /// paper counts as the sketch's serialized size.
    #[must_use]
    pub fn register_bytes(&self) -> &[u8] {
        self.regs.as_bytes()
    }

    /// Serializes the sketch: a 7-byte self-describing header
    /// (`"ELL1"`, t, d, p) followed by the register array.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.regs.as_bytes();
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&[self.cfg.t(), self.cfg.d(), self.cfg.p()]);
        out.extend_from_slice(payload);
        out
    }

    /// Deserializes a sketch produced by [`ExaLogLog::to_bytes`],
    /// validating the header, the payload length, and every register's
    /// structural invariants.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EllError> {
        if bytes.len() < HEADER_LEN {
            return Err(EllError::CorruptSerialization {
                reason: format!("{} bytes is shorter than the header", bytes.len()),
            });
        }
        if &bytes[..4] != MAGIC {
            return Err(EllError::CorruptSerialization {
                reason: "bad magic".into(),
            });
        }
        let cfg = EllConfig::new(bytes[4], bytes[5], bytes[6])?;
        Self::from_register_bytes(cfg, &bytes[HEADER_LEN..])
    }

    /// Reconstructs a sketch from a bare register array (no header), as
    /// exposed by [`ExaLogLog::register_bytes`].
    pub fn from_register_bytes(cfg: EllConfig, payload: &[u8]) -> Result<Self, EllError> {
        let regs =
            PackedArray::from_bytes(cfg.register_width(), cfg.m(), payload).map_err(|e| {
                EllError::CorruptSerialization {
                    reason: e.to_string(),
                }
            })?;
        for (i, r) in regs.iter().enumerate() {
            if !registers::is_valid(&cfg, r) {
                return Err(EllError::CorruptSerialization {
                    reason: format!("register {i} holds unreachable value {r:#x}"),
                });
            }
        }
        // Rebuild the coefficient cache eagerly: the scan shares its
        // O(m) register pass with the validation above, and a sketch
        // that deserializes cold would silently pay the full Algorithm 3
        // scan on *every* subsequent `estimate()` (the cache is never
        // rebuilt through `&self`). One scan at load time keeps every
        // deserialized sketch on the incremental path.
        Ok(Self::from_valid_parts(cfg, regs))
    }

    /// Inserts a whole slice of pre-hashed elements — the batched ingest
    /// hot path.
    ///
    /// Bit-for-bit equivalent to calling [`ExaLogLog::insert_hash`] for
    /// each element in order (enforced by property tests); the speedup
    /// comes from splitting each unrolled block into a pure
    /// hash-decomposition pass — independent ALU work the CPU can overlap
    /// across lanes — followed by the serially dependent packed-register
    /// read-modify-writes.
    pub fn insert_hashes(&mut self, hashes: &[u64]) {
        const LANES: usize = 8;
        let d = self.cfg.d();
        let mut idx = [0usize; LANES];
        let mut val = [0u64; LANES];
        let mut chunks = hashes.chunks_exact(LANES);
        for chunk in &mut chunks {
            for (j, &h) in chunk.iter().enumerate() {
                (idx[j], val[j]) = self.decompose_hash(h);
            }
            for j in 0..LANES {
                let old = self.regs.get(idx[j]);
                let new = registers::update(old, val[j], d);
                if new != old {
                    self.regs.set(idx[j], new);
                    if let Some(c) = self.coeffs.as_deref_mut() {
                        ml::apply_register_change(c, &self.cfg, old, new);
                    }
                }
            }
        }
        for &h in chunks.remainder() {
            self.insert_hash(h);
        }
    }

    /// Inserts a whole stream of pre-hashed elements, buffering them into
    /// 1024-hash blocks that run through the unrolled
    /// [`ExaLogLog::insert_hashes`] hot path (the same chunking the
    /// `ell count` streaming pipeline uses). Bit-for-bit equivalent to
    /// inserting each hash in order; the buffer lives on the stack, so the
    /// operation stays allocation-free.
    pub fn extend_hashes(&mut self, hashes: impl IntoIterator<Item = u64>) {
        let mut buf = [0u64; 1024];
        let mut n = 0usize;
        for h in hashes {
            buf[n] = h;
            n += 1;
            if n == buf.len() {
                self.insert_hashes(&buf);
                n = 0;
            }
        }
        self.insert_hashes(&buf[..n]);
    }

    /// In-memory footprint of the sketch *state* in bytes: the struct
    /// itself plus the heap allocation of the register array. This is the
    /// "memory" column of Table 2 (Rust equivalent of the paper's
    /// measured allocation).
    ///
    /// Deliberately excluded: the incremental ML coefficient cache (536
    /// heap bytes when live — see [`ExaLogLog::coefficients_memory_bytes`]).
    /// It is derived, reconstructible accelerator state, not sketch
    /// state, and counting it would distort the paper-reproduction
    /// memory comparisons (Figure 10, Table 2) against baselines that
    /// carry no such cache.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + self.regs.as_bytes().len()
    }

    /// Heap bytes currently held by the incremental ML coefficient cache
    /// (0 when the cache is cold). Reported separately from
    /// [`ExaLogLog::memory_bytes`]; see there for why.
    #[must_use]
    pub fn coefficients_memory_bytes(&self) -> usize {
        match &self.coeffs {
            Some(_) => core::mem::size_of::<MlCoefficients>(),
            None => 0,
        }
    }
}

/// `Extend<u64>` consumes pre-hashed elements, enabling
/// `stream.collect()`-style pipelines.
impl Extend<u64> for ExaLogLog {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, hashes: T) {
        self.extend_hashes(hashes);
    }
}

impl core::fmt::Debug for ExaLogLog {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ExaLogLog({}, estimate≈{:.1})",
            self.cfg,
            self.estimate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ell_hash::SplitMix64;

    fn stream(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn empty_sketch_properties() {
        let s = ExaLogLog::with_params(2, 20, 6).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
        assert!((s.state_change_probability() - 1.0).abs() < 1e-12);
        assert_eq!(s.register_bytes().len(), 224);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut s = ExaLogLog::with_params(2, 20, 4).unwrap();
        let hashes = stream(42, 500);
        for &h in &hashes {
            s.insert_hash(h);
        }
        let snapshot = s.clone();
        for &h in &hashes {
            assert!(!s.insert_hash(h), "duplicate insertion changed state");
        }
        assert_eq!(s, snapshot);
    }

    #[test]
    fn insert_order_does_not_matter() {
        let hashes = stream(7, 300);
        let mut forward = ExaLogLog::with_params(1, 9, 5).unwrap();
        let mut backward = forward.clone();
        for &h in &hashes {
            forward.insert_hash(h);
        }
        for &h in hashes.iter().rev() {
            backward.insert_hash(h);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn decompose_hash_layout() {
        // t = 2, p = 4: index from bits 2..5, value from NLZ of the top 58
        // bits and the low 2 bits.
        let s = ExaLogLog::with_params(2, 6, 4).unwrap();
        // Hash with known structure: top bits 0…01…, index bits, low bits.
        let h: u64 = (1 << 40) | (0b1010 << 2) | 0b11;
        let (i, k) = s.decompose_hash(h);
        assert_eq!(i, 0b1010);
        // NLZ of h with low 6 bits set to 1 → 63 − 40 = 23 leading zeros.
        assert_eq!(k, 23 * 4 + 0b11 + 1);
    }

    #[test]
    fn update_value_range_is_respected() {
        for (t, p) in [(0u8, 2u8), (2, 8), (3, 4), (1, 12)] {
            let s = ExaLogLog::with_params(t, 4, p).unwrap();
            let max_k = s.config().max_update_value();
            // All-zero hash maximizes the NLZ.
            let (_, k) = s.decompose_hash(0);
            assert_eq!(k, max_k - ((1 << t) - 1), "t={t} p={p}");
            let (_, k) = s.decompose_hash(mask(u32::from(t))); // low bits max
            assert_eq!(k, max_k);
            // All-ones hash gives the minimum.
            let (_, k) = s.decompose_hash(u64::MAX);
            assert_eq!(k, 1 + mask(u32::from(t)));
        }
    }

    #[test]
    fn merge_equals_union_paper_protocol() {
        // Paper §5: merging two random sketches must equal inserting the
        // unified stream into a fresh sketch.
        for (t, d, p) in [
            (0u8, 0u8, 4u8),
            (0, 2, 4),
            (1, 9, 5),
            (2, 20, 4),
            (2, 24, 6),
        ] {
            let s1_hashes = stream(1000 + u64::from(t), 2000);
            let s2_hashes = stream(2000 + u64::from(d), 1500);
            let mut a = ExaLogLog::with_params(t, d, p).unwrap();
            let mut b = a.clone();
            let mut direct = a.clone();
            for &h in &s1_hashes {
                a.insert_hash(h);
                direct.insert_hash(h);
            }
            for &h in &s2_hashes {
                b.insert_hash(h);
                direct.insert_hash(h);
            }
            a.merge_from(&b).unwrap();
            assert_eq!(a, direct, "t={t} d={d} p={p}");
        }
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let mut a = ExaLogLog::with_params(2, 16, 4).unwrap();
        let mut b = a.clone();
        for &h in &stream(5, 800) {
            a.insert_hash(h);
        }
        for &h in &stream(6, 900) {
            b.insert_hash(h);
        }
        let mut ab = a.clone();
        ab.merge_from(&b).unwrap();
        let mut ba = b.clone();
        ba.merge_from(&a).unwrap();
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.merge_from(&b).unwrap();
        assert_eq!(abb, ab, "merging the same sketch again is a no-op");
    }

    #[test]
    fn merge_rejects_mismatched_configs() {
        let a = ExaLogLog::with_params(2, 20, 4).unwrap();
        let mut b = ExaLogLog::with_params(2, 20, 5).unwrap();
        assert!(b.merge_from(&a).is_err());
        let mut c = ExaLogLog::with_params(1, 20, 4).unwrap();
        assert!(c.merge_from(&a).is_err());
    }

    #[test]
    fn reduce_matches_direct_recording() {
        // Paper §5 validation protocol for Algorithm 6: insert identical
        // elements into differently configured sketches; reducing the
        // larger must reproduce the smaller exactly.
        let hashes = stream(99, 5000);
        for (t, d, p, d2, p2) in [
            (0u8, 2u8, 8u8, 2u8, 6u8),
            (0, 2, 8, 0, 8),
            (0, 2, 8, 1, 5),
            (1, 9, 9, 9, 4),
            (2, 20, 8, 20, 4),
            (2, 20, 8, 4, 6),
            (2, 24, 10, 0, 2),
            (3, 10, 7, 3, 3),
        ] {
            let mut big = ExaLogLog::with_params(t, d, p).unwrap();
            let mut small = ExaLogLog::with_params(t, d2, p2).unwrap();
            for &h in &hashes {
                big.insert_hash(h);
                small.insert_hash(h);
            }
            let reduced = big.reduce(d2, p2).unwrap();
            assert_eq!(
                reduced, small,
                "t={t} d={d}→{d2} p={p}→{p2}: reduction differs from direct recording"
            );
        }
    }

    #[test]
    fn reduce_identity() {
        let mut s = ExaLogLog::with_params(2, 20, 6).unwrap();
        for &h in &stream(3, 1000) {
            s.insert_hash(h);
        }
        assert_eq!(s.reduce(20, 6).unwrap(), s);
    }

    #[test]
    fn reduce_rejects_growth() {
        let s = ExaLogLog::with_params(2, 16, 6).unwrap();
        assert!(s.reduce(20, 6).is_err());
        assert!(s.reduce(16, 7).is_err());
    }

    #[test]
    fn merged_with_mixed_parameters() {
        // Mixed-parameter merge per §4.1: reduce to common, then merge.
        let hashes_a = stream(11, 3000);
        let hashes_b = stream(12, 2500);
        let mut a = ExaLogLog::with_params(2, 24, 8).unwrap();
        let mut b = ExaLogLog::with_params(2, 16, 6).unwrap();
        for &h in &hashes_a {
            a.insert_hash(h);
        }
        for &h in &hashes_b {
            b.insert_hash(h);
        }
        let merged = a.merged_with(&b).unwrap();
        assert_eq!(merged.config(), &EllConfig::new(2, 16, 6).unwrap());
        // Must equal direct recording at the common parameters.
        let mut direct = ExaLogLog::with_params(2, 16, 6).unwrap();
        for &h in hashes_a.iter().chain(hashes_b.iter()) {
            direct.insert_hash(h);
        }
        assert_eq!(merged, direct);
        // Different t is rejected.
        let c = ExaLogLog::with_params(1, 16, 6).unwrap();
        assert!(a.merged_with(&c).is_err());
    }

    #[test]
    fn estimate_tracks_true_count() {
        // p = 10 → predicted RMSE ≈ 1.9 % for ELL(2,20). Allow 4 sigma.
        let mut s = ExaLogLog::with_params(2, 20, 10).unwrap();
        let mut rng = SplitMix64::new(2024);
        for n in [100usize, 1_000, 10_000, 100_000] {
            s.clear();
            for _ in 0..n {
                s.insert_hash(rng.next_u64());
            }
            let est = s.estimate();
            let rel = est / n as f64 - 1.0;
            assert!(
                rel.abs() < 0.08,
                "n={n}: estimate {est} off by {:.1} %",
                rel * 100.0
            );
        }
    }

    #[test]
    fn estimate_is_monotone_under_merging() {
        // Merging can only add information: estimate(a ∪ b) ≥ max(est a, est b)
        // (holds statistically; with ML estimation it holds because every
        // register value only grows — check the register dominance).
        let mut a = ExaLogLog::with_params(2, 20, 6).unwrap();
        let mut b = a.clone();
        for &h in &stream(21, 4000) {
            a.insert_hash(h);
        }
        for &h in &stream(22, 4000) {
            b.insert_hash(h);
        }
        let ea = a.estimate();
        let eb = b.estimate();
        a.merge_from(&b).unwrap();
        let eab = a.estimate();
        assert!(eab >= ea.max(eb) * 0.999, "{eab} < max({ea}, {eb})");
    }

    #[test]
    fn serialization_roundtrip() {
        let mut s = ExaLogLog::with_params(2, 20, 8).unwrap();
        for &h in &stream(77, 10_000) {
            s.insert_hash(h);
        }
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), 7 + 896);
        let back = ExaLogLog::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        // Bare register payload round-trip too.
        let back2 = ExaLogLog::from_register_bytes(*s.config(), s.register_bytes()).unwrap();
        assert_eq!(back2, s);
    }

    #[test]
    fn serialization_rejects_corruption() {
        let mut s = ExaLogLog::with_params(0, 6, 4).unwrap();
        for &h in &stream(123, 1000) {
            s.insert_hash(h);
        }
        let good = s.to_bytes();
        // Truncated.
        assert!(ExaLogLog::from_bytes(&good[..good.len() - 1]).is_err());
        assert!(ExaLogLog::from_bytes(&good[..3]).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(ExaLogLog::from_bytes(&bad).is_err());
        // Bad parameters.
        let mut bad = good.clone();
        bad[6] = 1; // p = 1 < MIN_P
        assert!(ExaLogLog::from_bytes(&bad).is_err());
        // Register-invariant violation: u = 3 without its sentinel bit.
        // Register 0 occupies bits 0..12 (d = 6 indicator bits, then u);
        // u = 3 → r = 3·2^6 = 0b1100_0000 with all indicators clear, which
        // is unreachable (the sentinel at bit d−u = 3 must be set).
        let mut payload = s.register_bytes().to_vec();
        payload[0] = 0xc0;
        payload[1] &= 0xf0;
        let r = ExaLogLog::from_register_bytes(*s.config(), &payload);
        assert!(r.is_err(), "invalid register accepted: {r:?}");
    }

    #[test]
    fn state_change_probability_matches_incremental() {
        let mut s = ExaLogLog::with_params(2, 16, 4).unwrap();
        let mut mu = 1.0;
        let mut rng = SplitMix64::new(31);
        for _ in 0..5000 {
            let h = rng.next_u64();
            if let Some(change) = s.insert_hash_tracked(h) {
                let h_old = registers::change_probability(s.config(), change.old);
                let h_new = registers::change_probability(s.config(), change.new);
                mu -= h_old - h_new;
            }
        }
        let scratch = s.state_change_probability();
        assert!(
            (mu - scratch).abs() < 1e-9,
            "incremental μ {mu} vs from-scratch {scratch}"
        );
    }

    #[test]
    fn special_case_t0_d0_matches_classic_hll_registers() {
        // ELL(0,0) must hold exactly the HLL register values of
        // Algorithm 1 for the same hashes.
        let p = 6u8;
        let mut ell = ExaLogLog::with_params(0, 0, p).unwrap();
        let m = 1usize << p;
        let mut hll = vec![0u64; m];
        for &h in &stream(555, 20_000) {
            ell.insert_hash(h);
            // Algorithm 1 (paper): index from the TOP p bits, value from
            // NLZ of the rest. Our ELL consumes bits in a different order
            // (index above the low t bits) — equivalent in distribution.
            // For the comparison we replicate ELL's bit order with t = 0:
            let i = (h as usize) & (m - 1);
            let a = h | mask(u32::from(p));
            let k = u64::from(a.leading_zeros()) + 1;
            hll[i] = hll[i].max(k);
        }
        for (i, &expect) in hll.iter().enumerate() {
            assert_eq!(ell.register(i), expect, "register {i}");
        }
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = ExaLogLog::with_params(1, 9, 4).unwrap();
        for &h in &stream(8, 100) {
            s.insert_hash(h);
        }
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s, ExaLogLog::with_params(1, 9, 4).unwrap());
    }

    #[test]
    fn extend_matches_loop() {
        let cfg = EllConfig::optimal(6).unwrap();
        let hashes = stream(88, 2000);
        let mut by_loop = ExaLogLog::new(cfg);
        for &h in &hashes {
            by_loop.insert_hash(h);
        }
        let mut by_extend = ExaLogLog::new(cfg);
        by_extend.extend(hashes.iter().copied());
        assert_eq!(by_extend, by_loop);
    }

    #[test]
    fn batched_insert_matches_sequential() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 2000] {
            let hashes = stream(1234 + n as u64, n);
            let mut seq = ExaLogLog::with_params(2, 20, 6).unwrap();
            for &h in &hashes {
                seq.insert_hash(h);
            }
            let mut bat = ExaLogLog::with_params(2, 20, 6).unwrap();
            bat.insert_hashes(&hashes);
            assert_eq!(seq, bat, "n={n}");
        }
    }

    #[test]
    fn deserialized_sketch_estimates_through_the_cache() {
        // Regression: `from_bytes` used to return a cold sketch whose
        // every `estimate()` silently re-ran the O(m·d) Algorithm 3
        // scan (the cache cannot be rebuilt through `&self`). The cache
        // must come back live, agree with the scan, and produce
        // bit-identical estimates.
        let mut s = ExaLogLog::with_params(2, 20, 8).unwrap();
        for &h in &stream(4242, 20_000) {
            s.insert_hash(h);
        }
        let back = ExaLogLog::from_bytes(&s.to_bytes()).unwrap();
        assert!(
            back.has_cached_coefficients(),
            "deserialized sketch must take the cached estimation path"
        );
        assert_eq!(back.coefficients(), back.coefficients_scan());
        assert_eq!(back.estimate().to_bits(), s.estimate().to_bits());
        // The bare-payload path warms too.
        let back2 = ExaLogLog::from_register_bytes(*s.config(), s.register_bytes()).unwrap();
        assert!(back2.has_cached_coefficients());
        // And the cache stays exact through further inserts.
        let mut grown = back;
        for &h in &stream(77, 500) {
            grown.insert_hash(h);
        }
        assert_eq!(grown.coefficients(), grown.coefficients_scan());
    }

    #[test]
    fn memory_accounting() {
        let s = ExaLogLog::with_params(2, 24, 8).unwrap();
        // 256 registers × 32 bits = 1024 bytes payload + struct overhead.
        assert!(s.memory_bytes() >= 1024);
        assert!(s.memory_bytes() < 1024 + 128);
    }
}
