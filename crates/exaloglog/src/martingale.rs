//! Martingale (historic inverse probability) estimation (paper §3.3).
//!
//! When the data is *not* distributed — no merging needed — the distinct
//! count can be estimated online: every time the sketch state changes, the
//! estimate grows by the inverse of the probability that an unseen element
//! would have changed the state (Algorithm 4). This estimator is unbiased
//! and, for non-mergeable use, optimal; the paper shows it reduces the MVP
//! of the optimal configuration by 33 % versus HLL (Figure 5).
//!
//! [`MartingaleExaLogLog`] bundles a sketch with the running estimate and
//! keeps the state-change probability μ up to date in O(1) per insertion.

use crate::config::{EllConfig, EllError};
use crate::registers::change_probability;
use crate::sketch::ExaLogLog;
use ell_hash::Hasher64;

/// The bare martingale accumulator: the running estimate and the current
/// state-change probability μ. Pair it with any monotone sketch by feeding
/// it the per-change probability deltas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MartingaleEstimator {
    estimate: f64,
    mu: f64,
}

impl Default for MartingaleEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl MartingaleEstimator {
    /// A fresh estimator: estimate 0, state-change probability 1.
    #[must_use]
    pub const fn new() -> Self {
        MartingaleEstimator {
            estimate: 0.0,
            mu: 1.0,
        }
    }

    /// Restores an estimator from checkpointed state, as produced by
    /// [`MartingaleEstimator::estimate`] and
    /// [`MartingaleEstimator::state_change_probability`].
    #[must_use]
    pub const fn from_state(estimate: f64, mu: f64) -> Self {
        MartingaleEstimator { estimate, mu }
    }

    /// Records a state change (Algorithm 4): increments the estimate by
    /// 1/μ *before* lowering μ by the change in the modified register's
    /// change probability (`h_old − h_new > 0`).
    #[inline]
    pub fn on_state_change(&mut self, h_old: f64, h_new: f64) {
        debug_assert!(h_old >= h_new, "register change probability must drop");
        self.estimate += 1.0 / self.mu;
        self.mu -= h_old - h_new;
    }

    /// The current distinct-count estimate.
    #[inline]
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// The current state-change probability μ ∈ \[0, 1\].
    #[inline]
    #[must_use]
    pub fn state_change_probability(&self) -> f64 {
        self.mu
    }
}

/// An [`ExaLogLog`] sketch paired with a martingale estimator.
///
/// Supports everything the plain sketch does *except* merging (a merged
/// martingale estimate is not well-defined — the paper's §3.3 restriction).
///
/// ```
/// use exaloglog::{EllConfig, MartingaleExaLogLog};
/// use ell_hash::{Hasher64, WyHash};
///
/// let hasher = WyHash::new(0);
/// let mut sketch = MartingaleExaLogLog::new(EllConfig::martingale_optimal(10).unwrap());
/// for i in 0..50_000u32 {
///     sketch.insert_hash(hasher.hash_bytes(&i.to_le_bytes()));
/// }
/// assert!((sketch.estimate() / 50_000.0 - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MartingaleExaLogLog {
    sketch: ExaLogLog,
    estimator: MartingaleEstimator,
}

impl MartingaleExaLogLog {
    /// Creates an empty martingale-tracked sketch.
    #[must_use]
    pub fn new(cfg: EllConfig) -> Self {
        MartingaleExaLogLog {
            sketch: ExaLogLog::new(cfg),
            estimator: MartingaleEstimator::new(),
        }
    }

    /// Creates an empty martingale-tracked sketch from raw parameters.
    pub fn with_params(t: u8, d: u8, p: u8) -> Result<Self, EllError> {
        Ok(Self::new(EllConfig::new(t, d, p)?))
    }

    /// Reassembles a martingale-tracked sketch from a checkpointed sketch
    /// state and estimator — the deserialization counterpart of
    /// [`MartingaleExaLogLog::sketch`] plus the estimator accessors.
    #[must_use]
    pub fn from_parts(sketch: ExaLogLog, estimator: MartingaleEstimator) -> Self {
        MartingaleExaLogLog { sketch, estimator }
    }

    /// Inserts an element by its 64-bit hash; returns whether the state
    /// changed. O(1): the estimator update touches only the one register
    /// that changed.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) -> bool {
        if let Some(change) = self.sketch.insert_hash_tracked(h) {
            let cfg = self.sketch.config();
            let h_old = change_probability(cfg, change.old);
            let h_new = change_probability(cfg, change.new);
            self.estimator.on_state_change(h_old, h_new);
            true
        } else {
            false
        }
    }

    /// Hashes `element` with `hasher` and inserts it.
    #[inline]
    pub fn insert<H: Hasher64 + ?Sized>(&mut self, hasher: &H, element: &[u8]) -> bool {
        self.insert_hash(hasher.hash_bytes(element))
    }

    /// Inserts a whole slice of pre-hashed elements — the batched ingest
    /// hot path.
    ///
    /// Bit-for-bit equivalent to calling
    /// [`MartingaleExaLogLog::insert_hash`] for each element in order.
    /// Martingale exactness demands more than the plain sketch's batch
    /// contract: [`MartingaleEstimator::on_state_change`] must fire once
    /// per *actual* register change, in insertion order, because every
    /// 1/μ increment depends on the μ left behind by all earlier
    /// changes. The unrolled block therefore splits into a pure
    /// hash-decomposition pass (independent ALU work the CPU overlaps
    /// across lanes) followed by strictly sequential register
    /// read-modify-writes, each driving the estimator immediately —
    /// changes are never coalesced or reordered (property-tested in
    /// `proptest_martingale.rs`).
    pub fn insert_hashes(&mut self, hashes: &[u64]) {
        const LANES: usize = 8;
        let mut idx = [0usize; LANES];
        let mut val = [0u64; LANES];
        let mut chunks = hashes.chunks_exact(LANES);
        for chunk in &mut chunks {
            for (j, &h) in chunk.iter().enumerate() {
                (idx[j], val[j]) = self.sketch.decompose_hash(h);
            }
            for j in 0..LANES {
                if let Some(change) = self.sketch.apply_update(idx[j], val[j]) {
                    let cfg = self.sketch.config();
                    let h_old = change_probability(cfg, change.old);
                    let h_new = change_probability(cfg, change.new);
                    self.estimator.on_state_change(h_old, h_new);
                }
            }
        }
        for &h in chunks.remainder() {
            self.insert_hash(h);
        }
    }

    /// The martingale distinct-count estimate (unbiased).
    #[inline]
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.estimator.estimate()
    }

    /// The ML estimate from the underlying state — available as a
    /// cross-check; equals what a merge-capable reader would compute.
    #[must_use]
    pub fn ml_estimate(&self) -> f64 {
        self.sketch.estimate()
    }

    /// Read access to the underlying sketch.
    #[must_use]
    pub fn sketch(&self) -> &ExaLogLog {
        &self.sketch
    }

    /// Consumes self and returns the underlying sketch (dropping the
    /// martingale bookkeeping, e.g. before merging elsewhere).
    #[must_use]
    pub fn into_sketch(self) -> ExaLogLog {
        self.sketch
    }

    /// The tracked state-change probability μ.
    #[must_use]
    pub fn state_change_probability(&self) -> f64 {
        self.estimator.state_change_probability()
    }

    /// Total in-memory footprint in bytes (sketch plus the 16-byte
    /// estimator state — the paper's Table 2 counts this the same way).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.sketch.memory_bytes() + core::mem::size_of::<MartingaleEstimator>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ell_hash::SplitMix64;

    #[test]
    fn mu_matches_from_scratch_computation() {
        let mut s = MartingaleExaLogLog::with_params(2, 16, 5).unwrap();
        let mut rng = SplitMix64::new(17);
        for _ in 0..20_000 {
            s.insert_hash(rng.next_u64());
        }
        let tracked = s.state_change_probability();
        let scratch = s.sketch().state_change_probability();
        assert!(
            (tracked - scratch).abs() < 1e-9,
            "tracked {tracked} vs scratch {scratch}"
        );
    }

    #[test]
    fn estimate_tracks_true_count() {
        // ELL(2,16) at p = 10: predicted martingale RMSE ≈ 1.7 %.
        let mut s = MartingaleExaLogLog::with_params(2, 16, 10).unwrap();
        let mut rng = SplitMix64::new(99);
        let mut n = 0usize;
        for target in [1_000usize, 10_000, 100_000] {
            while n < target {
                s.insert_hash(rng.next_u64());
                n += 1;
            }
            let rel = s.estimate() / target as f64 - 1.0;
            assert!(rel.abs() < 0.07, "n={target}: off by {:.2} %", rel * 100.0);
        }
    }

    #[test]
    fn duplicates_never_move_the_estimate() {
        let mut s = MartingaleExaLogLog::with_params(2, 20, 4).unwrap();
        let mut rng = SplitMix64::new(3);
        let hashes: Vec<u64> = (0..500).map(|_| rng.next_u64()).collect();
        for &h in &hashes {
            s.insert_hash(h);
        }
        let before = s.estimate();
        for &h in &hashes {
            assert!(!s.insert_hash(h));
        }
        assert_eq!(s.estimate(), before);
    }

    #[test]
    fn small_counts_are_exact() {
        // While every insertion hits a fresh register, μ decrements exactly
        // and the estimate counts exactly: for n ≪ m the martingale
        // estimate is essentially n.
        let mut s = MartingaleExaLogLog::with_params(2, 24, 12).unwrap();
        let mut rng = SplitMix64::new(8);
        for n in 1..=64usize {
            s.insert_hash(rng.next_u64());
            let est = s.estimate();
            assert!(
                (est - n as f64).abs() < 0.05 * n as f64 + 0.5,
                "n={n}: {est}"
            );
        }
    }

    #[test]
    fn first_insertion_counts_exactly_one() {
        let mut s = MartingaleExaLogLog::with_params(0, 2, 4).unwrap();
        s.insert_hash(0xdead_beef_dead_beef);
        assert!((s.estimate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ml_estimate_agrees_with_martingale() {
        let mut s = MartingaleExaLogLog::with_params(2, 20, 8).unwrap();
        let mut rng = SplitMix64::new(2718);
        for _ in 0..50_000 {
            s.insert_hash(rng.next_u64());
        }
        let ml = s.ml_estimate();
        let mart = s.estimate();
        // Both estimate the same quantity with a few percent error each.
        assert!(
            (ml / mart - 1.0).abs() < 0.1,
            "ML {ml} vs martingale {mart}"
        );
    }
}
