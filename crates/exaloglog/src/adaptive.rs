//! Adaptive sparse→dense sketch lifecycle (paper §4.3).
//!
//! [`AdaptiveExaLogLog`] is the representation the serving layer
//! (`ell-store`) keys millions of counters on: it starts as a sparse
//! token list whose memory grows linearly with the number of distinct
//! elements, and **promotes itself** to the dense register array the
//! moment the token storage would cost as many bits as the registers —
//! the break-even rule of §4.3 that makes per-key sketches memory-viable
//! at fleet scale. Unlike [`SparseExaLogLog`] (which keeps its wrapper
//! struct forever), the adaptive sketch *unwraps* into a plain
//! [`ExaLogLog`] at promotion, so a promoted counter carries zero
//! residual sparse-mode state and serializes in the plain dense wire
//! format.
//!
//! Wire formats: the sparse phase serializes as `ELLS` (the
//! sparse-capable format wrapping the `ELLT` token payload); the
//! promoted phase serializes as the dense `ELL1` register format —
//! byte-identical to an [`ExaLogLog`] fed the same hashes.
//! [`AdaptiveExaLogLog::from_bytes`] auto-detects either magic.
//!
//! ```
//! use exaloglog::{AdaptiveExaLogLog, EllConfig};
//! use ell_hash::SplitMix64;
//!
//! let mut sketch = AdaptiveExaLogLog::new(EllConfig::optimal(8).unwrap()).unwrap();
//! let mut rng = SplitMix64::new(1);
//! sketch.insert_hash(rng.next_u64());
//! assert!(sketch.is_sparse()); // a handful of tokens: tiny footprint
//! for _ in 0..20_000 {
//!     sketch.insert_hash(rng.next_u64());
//! }
//! assert!(!sketch.is_sparse()); // auto-promoted at break-even
//! assert!((sketch.estimate() / 20_001.0 - 1.0).abs() < 0.1);
//! ```

use crate::atomic::AtomicExaLogLog;
use crate::config::{EllConfig, EllError};
use crate::sketch::ExaLogLog;
use crate::sparse::SparseExaLogLog;
use ell_hash::Hasher64;

/// Serialization magic of the sparse-capable format (shared with
/// [`SparseExaLogLog`]); the dense phase uses the plain `ELL1` format.
const SPARSE_MAGIC: &[u8; 4] = b"ELLS";

/// An ExaLogLog sketch that automatically promotes from the sparse token
/// representation to dense registers at the §4.3 break-even point.
///
/// The two variants are the two lifecycle phases. All methods keep the
/// invariant that a sketch past break-even is in the [`Dense`] variant;
/// if you construct the [`Sparse`] variant directly with an
/// already-densified [`SparseExaLogLog`], the next mutating call
/// normalizes it (serialization always emits the canonical form).
///
/// [`Dense`]: AdaptiveExaLogLog::Dense
/// [`Sparse`]: AdaptiveExaLogLog::Sparse
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptiveExaLogLog {
    /// Token-collecting phase: memory grows linearly with the distinct
    /// count, estimates are near-exact (token ML, Algorithm 7).
    Sparse(SparseExaLogLog),
    /// Promoted phase: the plain dense register sketch, bit-for-bit the
    /// state direct dense recording of the same hashes would have
    /// produced (token losslessness for `p + t ≤ v`).
    Dense(ExaLogLog),
}

impl AdaptiveExaLogLog {
    /// Creates an adaptive sketch in the sparse phase with the default
    /// token parameter `v = max(p + t, 26)` (32-bit tokens whenever they
    /// suffice).
    ///
    /// # Errors
    ///
    /// Propagates invalid-parameter errors from the token machinery.
    pub fn new(cfg: EllConfig) -> Result<Self, EllError> {
        Ok(AdaptiveExaLogLog::Sparse(SparseExaLogLog::new(cfg)?))
    }

    /// Creates an adaptive sketch with an explicit token parameter
    /// (`p + t ≤ v ≤ 58`).
    ///
    /// # Errors
    ///
    /// Rejects `v` outside the valid range for the configuration.
    pub fn with_token_parameter(cfg: EllConfig, v: u32) -> Result<Self, EllError> {
        Ok(AdaptiveExaLogLog::Sparse(
            SparseExaLogLog::with_token_parameter(cfg, v)?,
        ))
    }

    /// Wraps an existing dense sketch (already past its sparse life).
    #[must_use]
    pub fn from_dense(sketch: ExaLogLog) -> Self {
        AdaptiveExaLogLog::Dense(sketch)
    }

    /// The dense-mode configuration.
    #[must_use]
    pub fn config(&self) -> &EllConfig {
        match self {
            AdaptiveExaLogLog::Sparse(s) => s.config(),
            AdaptiveExaLogLog::Dense(d) => d.config(),
        }
    }

    /// Whether the sketch is still in the sparse (token) phase.
    #[must_use]
    pub fn is_sparse(&self) -> bool {
        match self {
            AdaptiveExaLogLog::Sparse(s) => s.is_sparse(),
            AdaptiveExaLogLog::Dense(_) => false,
        }
    }

    /// The token parameter `v` while sparse; `None` once promoted (the
    /// dense representation no longer depends on it).
    #[must_use]
    pub fn token_parameter(&self) -> Option<u32> {
        match self {
            AdaptiveExaLogLog::Sparse(s) if s.is_sparse() => Some(s.token_parameter()),
            _ => None,
        }
    }

    /// Re-establishes the phase invariant: a [`SparseExaLogLog`] that
    /// densified internally is unwrapped into the [`Dense`] variant.
    ///
    /// [`Dense`]: AdaptiveExaLogLog::Dense
    fn normalize(&mut self) {
        if let AdaptiveExaLogLog::Sparse(s) = self {
            if !s.is_sparse() {
                let placeholder =
                    SparseExaLogLog::with_token_parameter(*s.config(), s.token_parameter())
                        .expect("parameters of an existing sketch are valid");
                let dense = core::mem::replace(s, placeholder).into_dense();
                *self = AdaptiveExaLogLog::Dense(dense);
            }
        }
    }

    /// Forces promotion to the dense representation (a no-op when
    /// already promoted). The resulting state equals direct dense
    /// recording of the same hashes.
    pub fn promote(&mut self) {
        if let AdaptiveExaLogLog::Sparse(s) = self {
            s.densify();
        }
        self.normalize();
    }

    /// Inserts an element by its 64-bit hash, promoting at the
    /// break-even point. Returns whether the state changed.
    pub fn insert_hash(&mut self, hash: u64) -> bool {
        let changed = match self {
            AdaptiveExaLogLog::Sparse(s) => s.insert_hash(hash),
            AdaptiveExaLogLog::Dense(d) => d.insert_hash(hash),
        };
        self.normalize();
        changed
    }

    /// Hashes `element` with `hasher` and inserts it.
    pub fn insert<H: Hasher64 + ?Sized>(&mut self, hasher: &H, element: &[u8]) -> bool {
        self.insert_hash(hasher.hash_bytes(element))
    }

    /// Inserts a whole slice of pre-hashed elements, bit-for-bit
    /// equivalent to sequential [`AdaptiveExaLogLog::insert_hash`] calls
    /// in order (the batch may straddle the promotion point).
    pub fn insert_hashes(&mut self, hashes: &[u64]) {
        match self {
            AdaptiveExaLogLog::Sparse(s) => s.insert_hashes(hashes),
            AdaptiveExaLogLog::Dense(d) => d.insert_hashes(hashes),
        }
        self.normalize();
    }

    /// Whether the sketch has recorded no element at all (in either
    /// phase — a promoted sketch is empty when every register is zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match self {
            AdaptiveExaLogLog::Sparse(s) => s.is_empty(),
            AdaptiveExaLogLog::Dense(d) => d.is_empty(),
        }
    }

    /// Resets the sketch to the empty state while keeping its backing
    /// allocations (see [`SparseExaLogLog::reset`]): the sparse phase
    /// keeps its token-vector capacity, the promoted phase keeps its
    /// register array and stays dense. This is the buffer-reuse seam for
    /// the store's ingest sessions — a delta that is flushed by
    /// reference and reset costs no allocation on the next fill.
    pub fn reset(&mut self) {
        match self {
            AdaptiveExaLogLog::Sparse(s) => s.reset(),
            AdaptiveExaLogLog::Dense(d) => d.clear(),
        }
    }

    /// The ML distinct-count estimate (token ML while sparse, register
    /// ML with bias correction once promoted).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        match self {
            AdaptiveExaLogLog::Sparse(s) => s.estimate(),
            AdaptiveExaLogLog::Dense(d) => d.estimate(),
        }
    }

    /// The promoted register sketch, or `None` while still sparse.
    #[must_use]
    pub fn as_dense(&self) -> Option<&ExaLogLog> {
        match self {
            AdaptiveExaLogLog::Dense(d) => Some(d),
            AdaptiveExaLogLog::Sparse(_) => None,
        }
    }

    /// A dense copy of the current state (converting the token list if
    /// still sparse), leaving `self` untouched.
    #[must_use]
    pub fn to_dense(&self) -> ExaLogLog {
        match self {
            AdaptiveExaLogLog::Sparse(s) => s.clone().into_dense(),
            AdaptiveExaLogLog::Dense(d) => d.clone(),
        }
    }

    /// Rebuilds the dense phase's cached ML coefficients with one
    /// Algorithm 3 scan (see [`ExaLogLog::refresh_coefficients`]), making
    /// repeated estimates O(populated β levels) on a freshly deserialized
    /// sketch. No-op while sparse (token estimation has no register
    /// cache).
    pub fn refresh_coefficients(&mut self) {
        if let AdaptiveExaLogLog::Dense(d) = self {
            d.refresh_coefficients();
        }
    }

    /// Folds this sketch into a dense accumulator of the same
    /// configuration without materializing a dense copy (see
    /// [`SparseExaLogLog::merge_into_dense`]) — the allocation-free
    /// aggregation path for union queries over many keyed sketches.
    ///
    /// # Errors
    ///
    /// Fails when configurations differ.
    pub fn merge_into_dense(&self, acc: &mut ExaLogLog) -> Result<(), EllError> {
        match self {
            AdaptiveExaLogLog::Sparse(s) => s.merge_into_dense(acc),
            AdaptiveExaLogLog::Dense(d) => acc.merge_from(d),
        }
    }

    /// Folds this sketch into a lock-free atomic accumulator of the same
    /// configuration (see [`SparseExaLogLog::merge_into_atomic`]) — the
    /// flush path for thread-local delta sketches draining into a shared
    /// hot slot. Monotone register merge makes the result bit-identical
    /// to inserting the buffered hashes directly, regardless of flush
    /// timing or interleaving.
    ///
    /// # Errors
    ///
    /// Fails when configurations differ.
    pub fn merge_into_atomic(&self, acc: &AtomicExaLogLog) -> Result<(), EllError> {
        match self {
            AdaptiveExaLogLog::Sparse(s) => s.merge_into_atomic(acc),
            AdaptiveExaLogLog::Dense(d) => acc.merge_from(d),
        }
    }

    /// Merges another adaptive sketch with the same configuration.
    /// All four phase combinations are supported; the result equals
    /// direct recording of the union (a sparse self promotes when the
    /// other side is dense or when the merged token list crosses
    /// break-even).
    ///
    /// # Errors
    ///
    /// Fails when configurations differ, or when both sides are sparse
    /// with different token parameters.
    pub fn merge_from(&mut self, other: &AdaptiveExaLogLog) -> Result<(), EllError> {
        if self.config() != other.config() {
            return Err(EllError::IncompatibleSketches {
                reason: format!("{} vs {}", self.config(), other.config()),
            });
        }
        self.normalize();
        match (&mut *self, other) {
            (AdaptiveExaLogLog::Sparse(a), AdaptiveExaLogLog::Sparse(b)) if b.is_sparse() => {
                a.merge_from(b)?;
            }
            (AdaptiveExaLogLog::Dense(a), AdaptiveExaLogLog::Dense(b)) => {
                a.merge_from(b)?;
            }
            (AdaptiveExaLogLog::Dense(a), AdaptiveExaLogLog::Sparse(b)) => {
                a.merge_from(&b.clone().into_dense())?;
            }
            (AdaptiveExaLogLog::Sparse(_), _) => {
                // Other side is dense (whichever variant holds it):
                // promote, then register-wise merge.
                self.promote();
                let AdaptiveExaLogLog::Dense(a) = &mut *self else {
                    unreachable!("promote always produces the dense variant")
                };
                a.merge_from(&other.to_dense())?;
            }
        }
        self.normalize();
        Ok(())
    }

    /// Serializes the canonical state: the `ELLS` sparse format while in
    /// the token phase, the plain dense `ELL1` format once promoted
    /// (byte-identical to [`ExaLogLog::to_bytes`] of the same state).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            AdaptiveExaLogLog::Sparse(s) if s.is_sparse() => s.to_bytes(),
            AdaptiveExaLogLog::Sparse(s) => s.clone().into_dense().to_bytes(),
            AdaptiveExaLogLog::Dense(d) => d.to_bytes(),
        }
    }

    /// Deserializes either wire format, auto-detected by magic: `ELLS`
    /// restores the sparse phase, `ELL1` the promoted dense phase.
    ///
    /// # Errors
    ///
    /// Fails when the bytes describe neither format.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EllError> {
        if bytes.len() >= 4 && &bytes[..4] == SPARSE_MAGIC {
            let mut sketch = AdaptiveExaLogLog::Sparse(SparseExaLogLog::from_bytes(bytes)?);
            sketch.normalize();
            Ok(sketch)
        } else {
            Ok(AdaptiveExaLogLog::Dense(ExaLogLog::from_bytes(bytes)?))
        }
    }

    /// Current memory footprint of the sketch *state* in bytes: linear
    /// in the token count while sparse, the constant register array once
    /// promoted. Like [`ExaLogLog::memory_bytes`], the dense phase's
    /// reconstructible ML coefficient cache is excluded (see there for
    /// the rationale).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>()
            + match self {
                AdaptiveExaLogLog::Sparse(s) => s.memory_bytes(),
                AdaptiveExaLogLog::Dense(d) => d.register_bytes().len(),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ell_hash::SplitMix64;

    fn hashes(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    fn cfg() -> EllConfig {
        EllConfig::new(2, 16, 8).unwrap()
    }

    #[test]
    fn promotes_and_unwraps_to_plain_dense() {
        let mut s = AdaptiveExaLogLog::new(cfg()).unwrap();
        assert!(s.is_sparse());
        assert!(s.token_parameter().is_some());
        for h in hashes(20_000, 1) {
            s.insert_hash(h);
        }
        assert!(!s.is_sparse());
        assert!(matches!(s, AdaptiveExaLogLog::Dense(_)));
        assert!(s.token_parameter().is_none());
        assert!(s.as_dense().is_some());
    }

    #[test]
    fn promoted_state_equals_direct_dense_recording() {
        let stream = hashes(20_000, 2);
        let mut adaptive = AdaptiveExaLogLog::new(cfg()).unwrap();
        let mut direct = ExaLogLog::new(cfg());
        for &h in &stream {
            adaptive.insert_hash(h);
            direct.insert_hash(h);
        }
        assert_eq!(adaptive.to_bytes(), direct.to_bytes());
        assert_eq!(adaptive.estimate(), direct.estimate());
    }

    #[test]
    fn serialization_chooses_format_by_phase() {
        let mut s = AdaptiveExaLogLog::new(cfg()).unwrap();
        s.insert_hashes(&hashes(30, 3));
        assert_eq!(&s.to_bytes()[..4], b"ELLS");
        let back = AdaptiveExaLogLog::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        s.promote();
        assert_eq!(&s.to_bytes()[..4], b"ELL1");
        let back = AdaptiveExaLogLog::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        assert!(AdaptiveExaLogLog::from_bytes(&[1, 2, 3]).is_err());
    }

    #[test]
    fn un_normalized_sparse_variant_serializes_canonically() {
        // Construct the Sparse variant around an internally-dense
        // sketch: to_bytes must still emit the dense format.
        let mut inner = SparseExaLogLog::new(cfg()).unwrap();
        for h in hashes(20_000, 4) {
            inner.insert_hash(h);
        }
        assert!(!inner.is_sparse());
        let odd = AdaptiveExaLogLog::Sparse(inner.clone());
        assert_eq!(&odd.to_bytes()[..4], b"ELL1");
        assert_eq!(odd.to_bytes(), inner.clone().into_dense().to_bytes());
    }

    #[test]
    fn merge_covers_all_phase_combinations() {
        let small = hashes(40, 5);
        let big = hashes(20_000, 6);
        let build = |hs: &[u64]| {
            let mut s = AdaptiveExaLogLog::new(cfg()).unwrap();
            s.insert_hashes(hs);
            s
        };
        let union_direct = {
            let mut d = ExaLogLog::new(cfg());
            for &h in small.iter().chain(big.iter()) {
                d.insert_hash(h);
            }
            d
        };
        // sparse ← dense, dense ← sparse: both equal direct recording.
        let mut x = build(&small);
        x.merge_from(&build(&big)).unwrap();
        assert_eq!(x.to_bytes(), union_direct.to_bytes());
        let mut y = build(&big);
        y.merge_from(&build(&small)).unwrap();
        assert_eq!(y.to_bytes(), union_direct.to_bytes());
        // sparse ← sparse stays sparse below break-even.
        let mut z = build(&small);
        z.merge_from(&build(&small[..10])).unwrap();
        assert!(z.is_sparse());
        // dense ← dense.
        let mut w = build(&big);
        w.merge_from(&build(&big[..100])).unwrap();
        assert_eq!(w.to_bytes(), build(&big).to_bytes());
    }

    #[test]
    fn merge_rejects_mismatched_configurations() {
        let mut a = AdaptiveExaLogLog::new(EllConfig::new(2, 16, 8).unwrap()).unwrap();
        let b = AdaptiveExaLogLog::new(EllConfig::new(2, 16, 9).unwrap()).unwrap();
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn reset_empties_both_phases_without_changing_canonical_form() {
        let mut s = AdaptiveExaLogLog::new(cfg()).unwrap();
        assert!(s.is_empty());
        s.insert_hashes(&hashes(100, 10));
        assert!(!s.is_empty());
        s.reset();
        assert!(s.is_empty() && s.is_sparse());
        // Refilling a reset sparse buffer reproduces the canonical bytes
        // of a fresh sketch fed the same stream.
        let stream = hashes(200, 11);
        s.insert_hashes(&stream);
        let mut fresh = AdaptiveExaLogLog::new(cfg()).unwrap();
        fresh.insert_hashes(&stream);
        assert_eq!(s.to_bytes(), fresh.to_bytes());
        // A promoted buffer resets in place and stays dense (the cheap
        // zero-scan merge case), still reporting empty.
        s.insert_hashes(&hashes(50_000, 12));
        assert!(!s.is_sparse());
        let dense_mem = s.memory_bytes();
        s.reset();
        assert!(s.is_empty() && !s.is_sparse());
        assert_eq!(s.memory_bytes(), dense_mem, "reset must not reallocate");
    }

    #[test]
    fn memory_is_linear_then_constant() {
        let mut s = AdaptiveExaLogLog::new(cfg()).unwrap();
        let m0 = s.memory_bytes();
        s.insert_hashes(&hashes(100, 7));
        let m1 = s.memory_bytes();
        assert!(m1 > m0, "sparse memory must grow");
        s.insert_hashes(&hashes(50_000, 8));
        let dense = s.memory_bytes();
        s.insert_hashes(&hashes(50_000, 9));
        assert_eq!(s.memory_bytes(), dense, "dense memory is constant");
    }
}
