//! Lock-free concurrent ExaLogLog (paper §2.4).
//!
//! The paper singles out ELL(2, 24) because its 32-bit registers make the
//! sketch "convenient for concurrent updates using compare-and-swap
//! instructions". [`AtomicExaLogLog`] implements exactly that: registers
//! live in a `Vec<AtomicU32>` and insertion retries a CAS loop. Because
//! the register update function is monotone (values only grow) and the
//! merge of concurrent updates equals their sequential application in
//! either order, the final state is *identical* to single-threaded
//! insertion of the same element set — concurrency costs no accuracy.
//!
//! Only configurations whose registers fit 32 bits are accepted (any
//! `6 + t + d ≤ 32`; the paper's ELL(2, 24) is the canonical choice).
//!
//! ```
//! use exaloglog::{atomic::AtomicExaLogLog, EllConfig};
//! use std::sync::Arc;
//!
//! let sketch = Arc::new(AtomicExaLogLog::new(EllConfig::aligned32(10).unwrap()).unwrap());
//! std::thread::scope(|s| {
//!     for shard in 0..4u64 {
//!         let sketch = Arc::clone(&sketch);
//!         s.spawn(move || {
//!             for i in 0..25_000u64 {
//!                 sketch.insert_hash(ell_hash::mix64(shard * 25_000 + i));
//!             }
//!         });
//!     }
//! });
//! let estimate = sketch.snapshot().estimate();
//! assert!((estimate / 100_000.0 - 1.0).abs() < 0.1);
//! ```

use crate::config::{EllConfig, EllError};
use crate::registers;
use crate::sketch::ExaLogLog;
use core::sync::atomic::{AtomicU32, Ordering};
use ell_hash::Hasher64;

/// A thread-safe ExaLogLog with lock-free inserts.
#[derive(Debug)]
pub struct AtomicExaLogLog {
    cfg: EllConfig,
    regs: Vec<AtomicU32>,
}

impl AtomicExaLogLog {
    /// Creates an empty concurrent sketch.
    ///
    /// # Errors
    ///
    /// Rejects configurations whose registers exceed 32 bits.
    pub fn new(cfg: EllConfig) -> Result<Self, EllError> {
        if cfg.register_width() > 32 {
            return Err(EllError::InvalidParameter {
                reason: format!(
                    "atomic sketch needs registers ≤ 32 bits, got {} (try ELL(2,24))",
                    cfg.register_width()
                ),
            });
        }
        let mut regs = Vec::with_capacity(cfg.m());
        regs.resize_with(cfg.m(), || AtomicU32::new(0));
        Ok(AtomicExaLogLog { cfg, regs })
    }

    /// This sketch's configuration.
    #[must_use]
    pub fn config(&self) -> &EllConfig {
        &self.cfg
    }

    /// Inserts an element by its 64-bit hash; safe to call from any number
    /// of threads concurrently. Returns whether this call changed the
    /// state.
    ///
    /// Lock-free: a compare-exchange loop that retries only when another
    /// thread raced on the same register; monotonicity guarantees
    /// convergence in at most a handful of iterations.
    pub fn insert_hash(&self, h: u64) -> bool {
        // Same decomposition as the sequential sketch (Algorithm 2).
        let t = u32::from(self.cfg.t());
        let p = u32::from(self.cfg.p());
        let i = ((h >> t) as usize) & (self.cfg.m() - 1);
        let a = h | ell_bitpack::mask(p + t);
        let k = (u64::from(a.leading_zeros()) << t) + (h & ell_bitpack::mask(t)) + 1;

        let reg = &self.regs[i];
        let mut current = reg.load(Ordering::Relaxed);
        loop {
            let updated = registers::update(u64::from(current), k, self.cfg.d()) as u32;
            if updated == current {
                return false;
            }
            match reg.compare_exchange_weak(current, updated, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Hashes `element` with `hasher` and inserts it.
    pub fn insert<H: Hasher64 + ?Sized>(&self, hasher: &H, element: &[u8]) -> bool {
        self.insert_hash(hasher.hash_bytes(element))
    }

    /// Takes a consistent-enough snapshot as a sequential [`ExaLogLog`]
    /// for estimation, merging or serialization.
    ///
    /// Register loads are individually atomic; a concurrent writer may
    /// land between loads, which is harmless for a monotone sketch (the
    /// snapshot then represents some interleaving of the insert stream —
    /// exactly what a sequential sketch would have seen).
    #[must_use]
    pub fn snapshot(&self) -> ExaLogLog {
        let mut out = ExaLogLog::new(self.cfg);
        for (i, reg) in self.regs.iter().enumerate() {
            let v = u64::from(reg.load(Ordering::Acquire));
            if v != 0 {
                out.set_register_unchecked(i, v);
            }
        }
        out
    }

    /// Total in-memory footprint in bytes: the struct plus the atomic
    /// register array (4 bytes per register).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + self.regs.len() * core::mem::size_of::<AtomicU32>()
    }

    /// Folds this sketch's current registers into a sequential
    /// accumulator of the same configuration, register-merge-wise,
    /// without allocating an intermediate snapshot. Empty registers are
    /// skipped. This is the aggregation shape the keyed store's
    /// all-keys-union query uses.
    ///
    /// Loads are individually atomic with the same consistency caveat as
    /// [`AtomicExaLogLog::snapshot`].
    ///
    /// # Errors
    ///
    /// Fails when configurations differ.
    pub fn merge_into_dense(&self, acc: &mut ExaLogLog) -> Result<(), EllError> {
        if self.cfg != *acc.config() {
            return Err(EllError::IncompatibleSketches {
                reason: format!("{} vs {}", self.cfg, acc.config()),
            });
        }
        for (i, reg) in self.regs.iter().enumerate() {
            let v = u64::from(reg.load(Ordering::Acquire));
            if v != 0 {
                acc.merge_register_value(i, v);
            }
        }
        Ok(())
    }

    /// Builds a concurrent sketch holding the same state as a sequential
    /// one (e.g. to resume shared ingestion from a checkpoint).
    ///
    /// # Errors
    ///
    /// Rejects configurations whose registers exceed 32 bits.
    pub fn from_sketch(other: &ExaLogLog) -> Result<Self, EllError> {
        let s = Self::new(*other.config())?;
        s.merge_from(other)?;
        Ok(s)
    }

    /// Merges a sequential sketch into this one (register-wise CAS max),
    /// e.g. to fold shard-local sketches into a shared accumulator.
    ///
    /// The incoming register array is scanned as 64-bit words
    /// ([`ExaLogLog::for_each_nonzero_register`]), so runs of empty
    /// registers — the common case when folding a lightly filled shard —
    /// cost one comparison per 64 bits instead of one packed read and CAS
    /// loop per register.
    ///
    /// # Errors
    ///
    /// Fails when configurations differ.
    pub fn merge_from(&self, other: &ExaLogLog) -> Result<(), EllError> {
        if self.cfg != *other.config() {
            return Err(EllError::IncompatibleSketches {
                reason: format!("{} vs {}", self.cfg, other.config()),
            });
        }
        other.for_each_nonzero_register(|i, incoming| {
            let reg = &self.regs[i];
            let mut current = reg.load(Ordering::Relaxed);
            loop {
                let merged = registers::merge(u64::from(current), incoming, self.cfg.d()) as u32;
                if merged == current {
                    break;
                }
                match reg.compare_exchange_weak(
                    current,
                    merged,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => current = actual,
                }
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ell_hash::{mix64, SplitMix64};
    use std::sync::Arc;

    #[test]
    fn rejects_wide_registers() {
        // ELL(2,28) needs 36-bit registers.
        let cfg = EllConfig::new(2, 28, 8).unwrap();
        assert!(AtomicExaLogLog::new(cfg).is_err());
        assert!(AtomicExaLogLog::new(EllConfig::aligned32(8).unwrap()).is_ok());
        assert!(AtomicExaLogLog::new(EllConfig::optimal(8).unwrap()).is_ok()); // 28-bit fits
    }

    #[test]
    fn concurrent_equals_sequential() {
        // The defining property: any interleaving produces the exact same
        // final state as sequential insertion.
        let cfg = EllConfig::aligned32(8).unwrap();
        let atomic = Arc::new(AtomicExaLogLog::new(cfg).unwrap());
        let hashes: Vec<u64> = {
            let mut rng = SplitMix64::new(404);
            (0..80_000).map(|_| rng.next_u64()).collect()
        };
        std::thread::scope(|s| {
            for chunk in hashes.chunks(hashes.len() / 8) {
                let atomic = Arc::clone(&atomic);
                s.spawn(move || {
                    for &h in chunk {
                        atomic.insert_hash(h);
                    }
                });
            }
        });
        let mut sequential = ExaLogLog::new(cfg);
        for &h in &hashes {
            sequential.insert_hash(h);
        }
        assert_eq!(atomic.snapshot(), sequential);
    }

    #[test]
    fn contended_single_register() {
        // All updates target one register: maximal contention; the CAS
        // loop must still produce the sequential result.
        let cfg = EllConfig::aligned32(4).unwrap();
        let atomic = Arc::new(AtomicExaLogLog::new(cfg).unwrap());
        // Hashes whose register index bits (t..p+t) are all zero.
        let hashes: Vec<u64> = (0..20_000u64).map(|i| mix64(i) & !(0b1111 << 2)).collect();
        std::thread::scope(|s| {
            for chunk in hashes.chunks(hashes.len() / 4) {
                let atomic = Arc::clone(&atomic);
                s.spawn(move || {
                    for &h in chunk {
                        atomic.insert_hash(h);
                    }
                });
            }
        });
        let mut sequential = ExaLogLog::new(cfg);
        for &h in &hashes {
            sequential.insert_hash(h);
        }
        assert_eq!(atomic.snapshot(), sequential);
    }

    #[test]
    fn merge_from_sequential_shards() {
        let cfg = EllConfig::aligned32(6).unwrap();
        let atomic = AtomicExaLogLog::new(cfg).unwrap();
        let mut direct = ExaLogLog::new(cfg);
        for shard in 0..4u64 {
            let mut local = ExaLogLog::new(cfg);
            let mut rng = SplitMix64::new(shard);
            for _ in 0..5_000 {
                let h = rng.next_u64();
                local.insert_hash(h);
                direct.insert_hash(h);
            }
            atomic.merge_from(&local).unwrap();
        }
        assert_eq!(atomic.snapshot(), direct);
        // Mismatched config rejected.
        let other = ExaLogLog::new(EllConfig::aligned32(7).unwrap());
        assert!(atomic.merge_from(&other).is_err());
    }

    #[test]
    fn estimate_accuracy_preserved() {
        let cfg = EllConfig::aligned32(10).unwrap();
        let atomic = Arc::new(AtomicExaLogLog::new(cfg).unwrap());
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let atomic = Arc::clone(&atomic);
                s.spawn(move || {
                    let mut rng = SplitMix64::new(1000 + tid);
                    for _ in 0..50_000 {
                        atomic.insert_hash(rng.next_u64());
                    }
                });
            }
        });
        let est = atomic.snapshot().estimate();
        assert!(
            (est / 200_000.0 - 1.0).abs() < 0.08,
            "concurrent estimate {est}"
        );
    }
}
