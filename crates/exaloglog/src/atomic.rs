//! Lock-free concurrent ExaLogLog (paper §2.4).
//!
//! The paper singles out ELL(2, 24) because its 32-bit registers make the
//! sketch "convenient for concurrent updates using compare-and-swap
//! instructions". [`AtomicExaLogLog`] generalizes that observation to
//! *every* valid configuration: registers are packed into `AtomicU64`
//! words — `⌊64 / width⌋` registers per word, so no register ever
//! straddles a word boundary — and insertion retries a CAS loop on the
//! containing word. Because the register update function is monotone
//! (values only grow) and the merge of concurrent updates equals their
//! sequential application in either order, the final state is
//! *identical* to single-threaded insertion of the same element set —
//! concurrency costs no accuracy.
//!
//! For the paper's 32-bit-aligned configurations (ELL(2, 24)) this
//! layout stores exactly two registers per word, matching the memory
//! footprint of a plain `AtomicU32` array; narrower registers pack more
//! densely (HLL's 6-bit registers fit ten per word), and wide
//! configurations such as ELL(2, 28) (36-bit registers) get one
//! register per word — more padding, but the same lock-free hot path.
//!
//! ```
//! use exaloglog::{atomic::AtomicExaLogLog, EllConfig};
//! use std::sync::Arc;
//!
//! let sketch = Arc::new(AtomicExaLogLog::new(EllConfig::aligned32(10).unwrap()));
//! std::thread::scope(|s| {
//!     for shard in 0..4u64 {
//!         let sketch = Arc::clone(&sketch);
//!         s.spawn(move || {
//!             for i in 0..25_000u64 {
//!                 sketch.insert_hash(ell_hash::mix64(shard * 25_000 + i));
//!             }
//!         });
//!     }
//! });
//! let estimate = sketch.snapshot().estimate();
//! assert!((estimate / 100_000.0 - 1.0).abs() < 0.1);
//! ```

use crate::config::{EllConfig, EllError};
use crate::registers;
use crate::sketch::ExaLogLog;
use crate::sync::atomic::{AtomicU64, Ordering};
use ell_hash::Hasher64;

/// A thread-safe ExaLogLog with lock-free inserts, supporting every
/// valid register width (6..=64 bits).
#[derive(Debug)]
pub struct AtomicExaLogLog {
    cfg: EllConfig,
    /// Packed register words: `regs_per_word` registers of
    /// `register_width` bits each, starting at bit 0; upper bits unused.
    words: Vec<AtomicU64>,
    regs_per_word: usize,
    width: u32,
}

impl AtomicExaLogLog {
    /// Creates an empty concurrent sketch. Every valid configuration is
    /// accepted; wider-than-32-bit registers simply pack one per word.
    #[must_use]
    pub fn new(cfg: EllConfig) -> Self {
        let width = cfg.register_width();
        let regs_per_word = (64 / width) as usize;
        let word_count = cfg.m().div_ceil(regs_per_word);
        let mut words = Vec::with_capacity(word_count);
        words.resize_with(word_count, || AtomicU64::new(0));
        AtomicExaLogLog {
            cfg,
            words,
            regs_per_word,
            width,
        }
    }

    /// This sketch's configuration.
    #[must_use]
    pub fn config(&self) -> &EllConfig {
        &self.cfg
    }

    /// Word index and bit shift of register `i`.
    #[inline]
    fn locate(&self, i: usize) -> (usize, u32) {
        (
            i / self.regs_per_word,
            (i % self.regs_per_word) as u32 * self.width,
        )
    }

    /// CAS-applies `f` to register `i` until it sticks; returns whether
    /// the register changed. `f` must be monotone (idempotent once the
    /// target value is reached) for the loop to terminate under
    /// contention.
    #[inline]
    fn rmw_register<F: Fn(u64) -> u64>(&self, i: usize, f: F) -> bool {
        let (w, shift) = self.locate(i);
        let field = ell_bitpack::mask(self.width);
        let word = &self.words[w];
        // ordering: Relaxed — this load only seeds the CAS loop; a stale
        // value costs one extra iteration, never correctness.
        let mut current = word.load(Ordering::Relaxed);
        loop {
            let old = (current >> shift) & field;
            let new = f(old);
            if new == old {
                return false;
            }
            let updated = (current & !(field << shift)) | (new << shift);
            // ordering: Relaxed/Relaxed — the register word is the entire
            // payload (no other memory is published through it) and the
            // update is a monotone join, so every interleaving of Relaxed
            // CASes yields the same final word. Cross-thread visibility of
            // the finished sketch is established by whoever joins the
            // ingest threads or takes the store's shard lock, not here.
            // See CONCURRENCY.md § "CAS register merge".
            match word.compare_exchange_weak(current, updated, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Inserts an element by its 64-bit hash; safe to call from any number
    /// of threads concurrently. Returns whether this call changed the
    /// state.
    ///
    /// Lock-free: a compare-exchange loop on the containing 64-bit word
    /// that retries only when another thread raced on the same word;
    /// monotonicity guarantees convergence in at most a handful of
    /// iterations.
    pub fn insert_hash(&self, h: u64) -> bool {
        // Same decomposition as the sequential sketch (Algorithm 2).
        let t = u32::from(self.cfg.t());
        let p = u32::from(self.cfg.p());
        let i = ((h >> t) as usize) & (self.cfg.m() - 1);
        let a = h | ell_bitpack::mask(p + t);
        let k = (u64::from(a.leading_zeros()) << t) + (h & ell_bitpack::mask(t)) + 1;
        let d = self.cfg.d();
        self.rmw_register(i, |old| registers::update(old, k, d))
    }

    /// Hashes `element` with `hasher` and inserts it.
    pub fn insert<H: Hasher64 + ?Sized>(&self, hasher: &H, element: &[u8]) -> bool {
        self.insert_hash(hasher.hash_bytes(element))
    }

    /// Register-merges `incoming` into register `i` (CAS loop), the
    /// primitive behind [`AtomicExaLogLog::merge_from`] and the keyed
    /// store's buffered-delta flush.
    pub(crate) fn merge_register_value(&self, i: usize, incoming: u64) {
        let d = self.cfg.d();
        self.rmw_register(i, |old| registers::merge(old, incoming, d));
    }

    /// Takes a consistent-enough snapshot as a sequential [`ExaLogLog`]
    /// for estimation, merging or serialization.
    ///
    /// Word loads are individually atomic; a concurrent writer may land
    /// between loads, which is harmless for a monotone sketch (the
    /// snapshot then represents some interleaving of the insert stream —
    /// exactly what a sequential sketch would have seen). Because no
    /// register straddles a word boundary, a snapshot never observes a
    /// torn register.
    #[must_use]
    pub fn snapshot(&self) -> ExaLogLog {
        let mut out = ExaLogLog::new(self.cfg);
        self.for_each_nonzero(|i, v| out.set_register_unchecked(i, v));
        out
    }

    /// Calls `f(index, value)` for every currently nonzero register,
    /// skipping empty words with one comparison per 64 bits and
    /// extracting the set lanes of nonzero words by
    /// mask-and-`trailing_zeros` instead of decoding every lane.
    fn for_each_nonzero<F: FnMut(usize, u64)>(&self, mut f: F) {
        let m = self.cfg.m();
        for (w, word) in self.words.iter().enumerate() {
            // ordering: Relaxed — each word load is individually atomic
            // (no torn registers) and registers are monotone, so any
            // combination of per-word values the scan observes equals the
            // state of some legal prefix of the insert stream; there is no
            // dependent non-atomic data for an Acquire to order. This was
            // Acquire before the PR-10 audit; with Relaxed CAS writers it
            // paired with nothing and bought nothing (see CONCURRENCY.md
            // § "Snapshot during hot ingest").
            let bits = word.load(Ordering::Relaxed);
            if bits == 0 {
                continue;
            }
            let base = w * self.regs_per_word;
            // Padding lanes (beyond regs_per_word, or past m in the final
            // word) are never written, so extraction cannot visit them.
            ell_bitpack::kernels::for_each_nonzero_lane(bits, self.width, |lane, v| {
                debug_assert!(base + lane < m, "nonzero padding lane");
                f(base + lane, v);
            });
        }
    }

    /// Total in-memory footprint in bytes: the struct plus the packed
    /// atomic word array.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + self.words.len() * core::mem::size_of::<AtomicU64>()
    }

    /// Folds this sketch's current registers into a sequential
    /// accumulator of the same configuration, register-merge-wise,
    /// without allocating an intermediate snapshot. Empty words are
    /// skipped. This is the aggregation shape the keyed store's
    /// all-keys-union query uses.
    ///
    /// Loads are individually atomic with the same consistency caveat as
    /// [`AtomicExaLogLog::snapshot`].
    ///
    /// # Errors
    ///
    /// Fails when configurations differ.
    pub fn merge_into_dense(&self, acc: &mut ExaLogLog) -> Result<(), EllError> {
        if self.cfg != *acc.config() {
            return Err(EllError::IncompatibleSketches {
                reason: format!("{} vs {}", self.cfg, acc.config()),
            });
        }
        self.for_each_nonzero(|i, v| acc.merge_register_value(i, v));
        Ok(())
    }

    /// Builds a concurrent sketch holding the same state as a sequential
    /// one (e.g. to resume shared ingestion from a checkpoint).
    #[must_use]
    pub fn from_sketch(other: &ExaLogLog) -> Self {
        let s = Self::new(*other.config());
        other.for_each_nonzero_register(|i, v| s.merge_register_value(i, v));
        s
    }

    /// Merges a sequential sketch into this one (register-wise CAS max),
    /// e.g. to fold shard-local or thread-local delta sketches into a
    /// shared accumulator.
    ///
    /// The incoming register array is scanned as 64-bit words
    /// ([`ExaLogLog::for_each_nonzero_register`]), so runs of empty
    /// registers — the common case when folding a lightly filled delta —
    /// cost one comparison per 64 bits instead of one packed read and CAS
    /// loop per register.
    ///
    /// # Errors
    ///
    /// Fails when configurations differ.
    pub fn merge_from(&self, other: &ExaLogLog) -> Result<(), EllError> {
        if self.cfg != *other.config() {
            return Err(EllError::IncompatibleSketches {
                reason: format!("{} vs {}", self.cfg, other.config()),
            });
        }
        other.for_each_nonzero_register(|i, incoming| self.merge_register_value(i, incoming));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ell_hash::{mix64, SplitMix64};
    use std::sync::Arc;

    #[test]
    fn smoke_concurrent_insert_and_snapshot() {
        // Deliberately tiny: the `sanitizers` CI job runs `cargo test
        // smoke` under ThreadSanitizer and Miri, where every memory
        // access costs orders of magnitude more. Two threads, a few
        // hundred inserts, one snapshot race — enough to let the tools
        // see every atomic protocol (CAS insert, merge, racing
        // snapshot) without a multi-hour run.
        let cfg = EllConfig::new(2, 16, 4).unwrap();
        let atomic = Arc::new(AtomicExaLogLog::new(cfg));
        let hashes: Vec<u64> = (0..200u64).map(mix64).collect();
        let (left, right) = hashes.split_at(100);
        std::thread::scope(|s| {
            let a = Arc::clone(&atomic);
            s.spawn(move || {
                for &h in left {
                    a.insert_hash(h);
                }
            });
            let a = Arc::clone(&atomic);
            s.spawn(move || {
                for &h in right {
                    a.insert_hash(h);
                }
            });
            let a = Arc::clone(&atomic);
            s.spawn(move || a.snapshot());
        });
        let mut sequential = ExaLogLog::new(cfg);
        for &h in &hashes {
            sequential.insert_hash(h);
        }
        assert_eq!(atomic.snapshot(), sequential);
    }

    #[test]
    fn accepts_every_register_width() {
        // ELL(2,28) needs 36-bit registers: one per word.
        let wide = AtomicExaLogLog::new(EllConfig::new(2, 28, 8).unwrap());
        assert_eq!(wide.regs_per_word, 1);
        // ELL(2,24): 32-bit registers, two per word — same footprint as
        // a plain AtomicU32 array.
        let aligned = AtomicExaLogLog::new(EllConfig::aligned32(8).unwrap());
        assert_eq!(aligned.regs_per_word, 2);
        assert_eq!(
            aligned.memory_bytes() - core::mem::size_of::<AtomicExaLogLog>(),
            aligned.cfg.m() * 4
        );
        // Optimal(8) uses 28-bit registers: still two per word.
        assert_eq!(
            AtomicExaLogLog::new(EllConfig::optimal(8).unwrap()).regs_per_word,
            2
        );
        // HLL registers are 6 bits: ten per word.
        assert_eq!(
            AtomicExaLogLog::new(EllConfig::hll(8).unwrap()).regs_per_word,
            10
        );
    }

    fn assert_concurrent_equals_sequential(cfg: EllConfig, n: usize, seed: u64) {
        let atomic = Arc::new(AtomicExaLogLog::new(cfg));
        let hashes: Vec<u64> = {
            let mut rng = SplitMix64::new(seed);
            (0..n).map(|_| rng.next_u64()).collect()
        };
        std::thread::scope(|s| {
            for chunk in hashes.chunks(hashes.len() / 8) {
                let atomic = Arc::clone(&atomic);
                s.spawn(move || {
                    for &h in chunk {
                        atomic.insert_hash(h);
                    }
                });
            }
        });
        let mut sequential = ExaLogLog::new(cfg);
        for &h in &hashes {
            sequential.insert_hash(h);
        }
        assert_eq!(atomic.snapshot(), sequential, "cfg {cfg}");
    }

    #[test]
    fn concurrent_equals_sequential() {
        // The defining property: any interleaving produces the exact same
        // final state as sequential insertion — including for register
        // widths that share a word (32, 28, 6 bits) and widths that get a
        // word to themselves (36 bits).
        assert_concurrent_equals_sequential(EllConfig::aligned32(8).unwrap(), 80_000, 404);
        assert_concurrent_equals_sequential(EllConfig::optimal(8).unwrap(), 40_000, 405);
        assert_concurrent_equals_sequential(EllConfig::new(2, 28, 8).unwrap(), 40_000, 406);
        assert_concurrent_equals_sequential(EllConfig::hll(8).unwrap(), 40_000, 407);
    }

    #[test]
    fn contended_single_register() {
        // All updates target one register: maximal contention; the CAS
        // loop must still produce the sequential result. The two
        // registers sharing word 0 with the target must stay zero.
        let cfg = EllConfig::aligned32(4).unwrap();
        let atomic = Arc::new(AtomicExaLogLog::new(cfg));
        // Hashes whose register index bits (t..p+t) are all zero.
        let hashes: Vec<u64> = (0..20_000u64).map(|i| mix64(i) & !(0b1111 << 2)).collect();
        std::thread::scope(|s| {
            for chunk in hashes.chunks(hashes.len() / 4) {
                let atomic = Arc::clone(&atomic);
                s.spawn(move || {
                    for &h in chunk {
                        atomic.insert_hash(h);
                    }
                });
            }
        });
        let mut sequential = ExaLogLog::new(cfg);
        for &h in &hashes {
            sequential.insert_hash(h);
        }
        assert_eq!(atomic.snapshot(), sequential);
    }

    #[test]
    fn merge_from_sequential_shards() {
        // Exercise a width (36) where registers get a full word and a
        // width (32) where two share one.
        for cfg in [
            EllConfig::aligned32(6).unwrap(),
            EllConfig::new(2, 28, 6).unwrap(),
        ] {
            let atomic = AtomicExaLogLog::new(cfg);
            let mut direct = ExaLogLog::new(cfg);
            for shard in 0..4u64 {
                let mut local = ExaLogLog::new(cfg);
                let mut rng = SplitMix64::new(shard);
                for _ in 0..5_000 {
                    let h = rng.next_u64();
                    local.insert_hash(h);
                    direct.insert_hash(h);
                }
                atomic.merge_from(&local).unwrap();
            }
            assert_eq!(atomic.snapshot(), direct);
            // Mismatched config rejected.
            let other = ExaLogLog::new(EllConfig::aligned32(7).unwrap());
            assert!(atomic.merge_from(&other).is_err());
        }
    }

    #[test]
    fn from_sketch_round_trips_state() {
        let cfg = EllConfig::new(2, 28, 7).unwrap();
        let mut dense = ExaLogLog::new(cfg);
        let mut rng = SplitMix64::new(11);
        for _ in 0..30_000 {
            dense.insert_hash(rng.next_u64());
        }
        let atomic = AtomicExaLogLog::from_sketch(&dense);
        assert_eq!(atomic.snapshot(), dense);
    }

    #[test]
    fn estimate_accuracy_preserved() {
        let cfg = EllConfig::aligned32(10).unwrap();
        let atomic = Arc::new(AtomicExaLogLog::new(cfg));
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let atomic = Arc::clone(&atomic);
                s.spawn(move || {
                    let mut rng = SplitMix64::new(1000 + tid);
                    for _ in 0..50_000 {
                        atomic.insert_hash(rng.next_u64());
                    }
                });
            }
        });
        let est = atomic.snapshot().estimate();
        assert!(
            (est / 200_000.0 - 1.0).abs() < 0.08,
            "concurrent estimate {est}"
        );
    }
}
