//! Entropy-coded serialization — the paper's §6 future-work direction.
//!
//! Figures 6 and 7 show that an *optimally compressed* ExaLogLog state
//! would need roughly 35–45 % fewer bits than the dense register array.
//! §6 suggests that "since the shape of the register distribution is
//! known (see Section 3.1), some sort of entropy coding could be a way to
//! approach the theoretical limit". This module implements exactly that:
//!
//! 1. estimate n̂ from the registers (the ML estimate);
//! 2. derive each register's probability model from the §3.1 PMF — the
//!    maximum update value `u` follows the distribution (13), and each
//!    indicator bit is an independent Bernoulli with probability
//!    Pr(A_k) = 1 − e^(−n̂·ρ(k)/m) (12);
//! 3. drive a binary arithmetic coder with that model.
//!
//! Because the decoder re-derives the identical model from the n̂ carried
//! in the header, coding is fully deterministic and lossless. The achieved
//! size lands within a few percent of the Shannon entropy, which the
//! extension experiment (`ell-repro --bin ext_compression`) compares to
//! the equation-(5) prediction.

use crate::config::{EllConfig, EllError};
use crate::pmf::{omega, rho_update};
use crate::sketch::ExaLogLog;

/// Magic for the compressed format.
const MAGIC: &[u8; 4] = b"ELLZ";

// ---------------------------------------------------------------------
// Binary arithmetic coder: the LZMA-style carry-propagating range coder
// (32-bit range, byte-wise renormalization, cache/pending-0xFF carry
// handling). Proven design; the round-trip property tests hammer it.
// ---------------------------------------------------------------------

const PROB_BITS: u32 = 16;
const PROB_ONE: u32 = 1 << PROB_BITS;
const TOP: u32 = 1 << 24;

struct Encoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Encoder {
    fn new() -> Self {
        Encoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xff00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            self.out.push(self.cache.wrapping_add(carry));
            for _ in 1..self.cache_size {
                self.out.push(0xffu8.wrapping_add(carry));
            }
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = u64::from((self.low as u32) << 8);
    }

    /// Encodes one bit with P(bit = 1) = `p1` (in 1/2^16 units, clamped
    /// away from 0 and 1 so both symbols stay codable).
    fn encode(&mut self, bit: bool, p1: u32) {
        let p1 = p1.clamp(1, PROB_ONE - 1);
        let bound = (self.range >> PROB_BITS) * p1;
        if bit {
            self.range = bound;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

struct Decoder<'a> {
    range: u32,
    code: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(input: &'a [u8]) -> Self {
        let mut d = Decoder {
            range: u32::MAX,
            code: 0,
            input,
            pos: 0,
        };
        // The first emitted byte is the encoder's initial cache (possibly
        // plus a carry); the decoder consumes it and loads 4 code bytes.
        let _ = d.next_byte();
        for _ in 0..4 {
            d.code = (d.code << 8) | u32::from(d.next_byte());
        }
        d
    }

    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn decode(&mut self, p1: u32) -> bool {
        let p1 = p1.clamp(1, PROB_ONE - 1);
        let bound = (self.range >> PROB_BITS) * p1;
        let bit = self.code < bound;
        if bit {
            self.range = bound;
        } else {
            self.code -= bound;
            self.range -= bound;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | u32::from(self.next_byte());
        }
        bit
    }
}

// ---------------------------------------------------------------------
// Register model from the §3.1 PMF.
// ---------------------------------------------------------------------

/// Per-sketch probability model derived from n̂.
struct RegisterModel {
    /// P(u > threshold | u ≥ threshold) for each u level, as coder probs.
    /// Used to code the maximum update value with a unary-style cascade.
    continue_probs: Vec<u32>,
    /// P(indicator bit set) for each update value k (1-indexed).
    bit_probs: Vec<u32>,
}

fn to_prob(p: f64) -> u32 {
    ((p * f64::from(PROB_ONE)) as u32).clamp(1, PROB_ONE - 1)
}

impl RegisterModel {
    fn build(cfg: &EllConfig, n_hat: f64) -> Self {
        let m = cfg.m() as f64;
        let rate = (n_hat / m).max(1e-12);
        let kmax = cfg.max_update_value();
        // P(max value ≥ u) = 1 − exp(−rate·(ω(u−1)))... derived from (13):
        // the maximum is ≥ u iff some value ≥ u occurred, which has total
        // probability ω(u−1).
        let p_ge = |u: u64| -> f64 {
            if u == 0 {
                1.0
            } else {
                -(-rate * omega(cfg, u - 1)).exp_m1()
            }
        };
        let mut continue_probs = Vec::with_capacity(kmax as usize + 1);
        for u in 0..=kmax {
            // P(max ≥ u+1 | max ≥ u)
            let num = if u == kmax { 0.0 } else { p_ge(u + 1) };
            let den = p_ge(u);
            let p = if den > 0.0 { (num / den).min(1.0) } else { 0.0 };
            continue_probs.push(to_prob(p));
        }
        let mut bit_probs = Vec::with_capacity(kmax as usize + 1);
        bit_probs.push(0); // k = 0 unused
        for k in 1..=kmax {
            bit_probs.push(to_prob(-(-rate * rho_update(cfg, k)).exp_m1()));
        }
        RegisterModel {
            continue_probs,
            bit_probs,
        }
    }
}

// ---------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------

/// Serializes a sketch with entropy coding. Typically 35–45 % smaller
/// than [`ExaLogLog::to_bytes`] in the mid-range of distinct counts,
/// approaching the equation-(5) optimum (Figure 6).
#[must_use]
pub fn compress(sketch: &ExaLogLog) -> Vec<u8> {
    let cfg = *sketch.config();
    let n_hat = sketch.estimate_ml_raw();
    let model = RegisterModel::build(&cfg, n_hat);
    let d = cfg.d();
    let mut enc = Encoder::new();
    // A zero register (u = 0) codes as exactly one "stop" bit at level 0.
    // Scanning only the nonzero registers through the word kernels and
    // gap-filling that stop bit for the runs of empty registers in
    // between produces a bit-identical stream to the historical
    // every-register loop, while empty stretches cost one word compare
    // per 64 bits instead of a register decode each.
    let zero_codes = cfg.max_update_value() > 0;
    let mut next = 0usize;
    sketch.for_each_nonzero_register(|i, r| {
        if zero_codes {
            for _ in next..i {
                enc.encode(false, model.continue_probs[0]);
            }
        }
        next = i + 1;
        let u = r >> d;
        // Unary-cascade code for u: one "continue" bit per level.
        for level in 0..u {
            enc.encode(true, model.continue_probs[level as usize]);
        }
        if u < cfg.max_update_value() {
            enc.encode(false, model.continue_probs[u as usize]);
        }
        // Indicator bits for values [max(1, u−d), u−1]; the sentinel bit
        // (position d−u when u ≤ d) is implied and not coded.
        if u >= 2 {
            let k_lo = if u > u64::from(d) {
                u - u64::from(d)
            } else {
                1
            };
            for k in k_lo..u {
                let bit = r & (1u64 << (u64::from(d) - (u - k))) != 0;
                enc.encode(bit, model.bit_probs[k as usize]);
            }
        }
    });
    if zero_codes {
        for _ in next..cfg.m() {
            enc.encode(false, model.continue_probs[0]);
        }
    }
    let payload = enc.finish();
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&[cfg.t(), cfg.d(), cfg.p(), 0]);
    out.extend_from_slice(&n_hat.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Restores a sketch serialized with [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<ExaLogLog, EllError> {
    if bytes.len() < 16 || &bytes[..4] != MAGIC {
        return Err(EllError::CorruptSerialization {
            reason: "bad compressed header".into(),
        });
    }
    let cfg = EllConfig::new(bytes[4], bytes[5], bytes[6])?;
    let mut n_bytes = [0u8; 8];
    n_bytes.copy_from_slice(&bytes[8..16]);
    let n_hat = f64::from_le_bytes(n_bytes);
    if !n_hat.is_finite() || n_hat < 0.0 {
        return Err(EllError::CorruptSerialization {
            reason: format!("invalid carried estimate {n_hat}"),
        });
    }
    let model = RegisterModel::build(&cfg, n_hat);
    let d = cfg.d();
    let kmax = cfg.max_update_value();
    let mut dec = Decoder::new(&bytes[16..]);
    let mut sketch = ExaLogLog::new(cfg);
    for i in 0..cfg.m() {
        let mut u = 0u64;
        while u < kmax && dec.decode(model.continue_probs[u as usize]) {
            u += 1;
        }
        if u == 0 {
            continue;
        }
        let mut r = u << d;
        if u <= u64::from(d) {
            r |= 1 << (u64::from(d) - u); // implied sentinel
        }
        if u >= 2 {
            let k_lo = if u > u64::from(d) {
                u - u64::from(d)
            } else {
                1
            };
            for k in k_lo..u {
                if dec.decode(model.bit_probs[k as usize]) {
                    r |= 1 << (u64::from(d) - (u - k));
                }
            }
        }
        sketch.set_register_unchecked(i, r);
    }
    // The raw register overwrites above dropped the incremental ML
    // coefficient cache; rebuild it here so a decompressed sketch —
    // like any other deserialized sketch — estimates at cached speed
    // instead of silently paying the Algorithm 3 scan on every call.
    sketch.refresh_coefficients();
    Ok(sketch)
}

/// The Shannon entropy of the sketch's state in bits under its own fitted
/// model — the floor any entropy coder can approach, and the quantity the
/// Figure 6/7 "optimal compression" MVPs refer to.
#[must_use]
pub fn state_entropy_bits(sketch: &ExaLogLog) -> f64 {
    let cfg = *sketch.config();
    let n_hat = sketch.estimate_ml_raw();
    let m = cfg.m() as f64;
    let rate = (n_hat / m).max(1e-300);
    let d = cfg.d();
    let kmax = cfg.max_update_value();
    // H = m · [H(U) + Σ_u P(U=u) Σ_{window} H_b(Pr(A_k))], computed
    // analytically thanks to the independence of the indicator events.
    let p_ge = |u: u64| -> f64 {
        if u == 0 {
            1.0
        } else {
            -(-rate * omega(&cfg, u - 1)).exp_m1()
        }
    };
    let mut h_u = 0.0;
    let mut h_bits = 0.0;
    for u in 0..=kmax {
        let p_u = (p_ge(u) - p_ge(u + 1)).max(0.0);
        h_u += ell_numerics::entropy_term(p_u);
        if u >= 2 && p_u > 0.0 {
            let k_lo = if u > u64::from(d) {
                u - u64::from(d)
            } else {
                1
            };
            let mut h_window = 0.0;
            for k in k_lo..u {
                let p_set = -(-rate * rho_update(&cfg, k)).exp_m1();
                h_window += ell_numerics::binary_entropy(p_set.clamp(0.0, 1.0));
            }
            h_bits += p_u * h_window;
        }
    }
    m * (h_u + h_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ell_hash::SplitMix64;

    fn build(t: u8, d: u8, p: u8, n: usize, seed: u64) -> ExaLogLog {
        let mut s = ExaLogLog::with_params(t, d, p).unwrap();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..n {
            s.insert_hash(rng.next_u64());
        }
        s
    }

    #[test]
    fn roundtrip_lossless() {
        for (t, d, p) in [
            (0u8, 2u8, 8u8),
            (1, 9, 8),
            (2, 20, 8),
            (2, 24, 6),
            (2, 16, 10),
        ] {
            for n in [0usize, 1, 10, 1000, 100_000] {
                let s = build(t, d, p, n, 99);
                let packed = compress(&s);
                let restored = decompress(&packed).unwrap();
                assert_eq!(restored, s, "t={t} d={d} p={p} n={n}");
            }
        }
    }

    #[test]
    fn decompressed_sketch_estimates_through_the_cache() {
        // Regression: `decompress` used to return the sketch with the
        // ML cache dropped by its raw register overwrites.
        let s = build(2, 20, 8, 30_000, 17);
        let restored = decompress(&compress(&s)).unwrap();
        assert!(
            restored.has_cached_coefficients(),
            "decompressed sketch must take the cached estimation path"
        );
        assert_eq!(restored.estimate().to_bits(), s.estimate().to_bits());
    }

    #[test]
    fn compression_saves_space_midrange() {
        // At n comparable to m·2^k the register distribution is far from
        // uniform, so entropy coding must beat the dense array clearly.
        let s = build(2, 20, 10, 200_000, 5);
        let dense = s.to_bytes().len();
        let packed = compress(&s).len();
        assert!(
            (packed as f64) < 0.75 * dense as f64,
            "compressed {packed} B vs dense {dense} B"
        );
    }

    #[test]
    fn compressed_size_near_entropy() {
        let s = build(2, 20, 10, 50_000, 6);
        let entropy_bytes = state_entropy_bits(&s) / 8.0;
        let packed = compress(&s).len() as f64 - 16.0; // header excluded
        assert!(
            packed < entropy_bytes * 1.1 + 16.0,
            "coder {packed:.0} B vs entropy floor {entropy_bytes:.0} B"
        );
        assert!(
            packed > entropy_bytes * 0.9 - 16.0,
            "coder beats entropy?! {packed:.0} B vs {entropy_bytes:.0} B"
        );
    }

    #[test]
    fn entropy_tracks_figure6_prediction() {
        // Equation (5): MVP_compressed ≈ entropy_bits × relvar. Check the
        // state entropy per register is in the ballpark the theory gives:
        // bits/register ≈ MVP5 / (MVP3 / (q+d)) … equivalently
        // entropy_bits ≈ MVP5 · ζ(2,1+τ) / ln b · … — use the direct form:
        // predicted compressed MVP = entropy · relvar where relvar =
        // MVP3/((q+d)m) by (1). So entropy/m ≈ MVP5/MVP3·(q+d).
        let s = build(2, 20, 10, 100_000, 7);
        let m = 1024.0;
        let predicted_bits_per_reg =
            crate::theory::mvp_ml_compressed(2, 20) / crate::theory::mvp_ml_dense(2, 20) * 28.0;
        let measured = state_entropy_bits(&s) / m;
        assert!(
            (measured / predicted_bits_per_reg - 1.0).abs() < 0.15,
            "bits/register {measured:.2} vs predicted {predicted_bits_per_reg:.2}"
        );
    }

    #[test]
    fn corrupt_compressed_header_rejected() {
        let s = build(2, 20, 6, 100, 8);
        let mut bytes = compress(&s);
        bytes[0] ^= 0xff;
        assert!(decompress(&bytes).is_err());
        let mut bytes = compress(&s);
        bytes[6] = 1; // invalid p
        assert!(decompress(&bytes).is_err());
        assert!(decompress(&[0u8; 3]).is_err());
    }
}
