//! Hardcoded fast paths for the paper's highlighted configurations.
//!
//! The generic [`ExaLogLog`] supports arbitrary
//! (t, d, p). The paper closes its performance discussion (§5.3) with
//! the remark that *"our ELL reference implementation is generic …
//! hardcoding these values could potentially further improve its
//! performance"*. This module does exactly that for the four
//! configurations §2.4 singles out:
//!
//! | Type | (t, d) | Register | Storage | §2.4 rationale |
//! |---|---|---|---|---|
//! | [`EllT2D20`] | (2, 20) | 28 bit | two per `u64` word (low 56 bits) | space optimum, MVP 3.67; "two registers can be packed into exactly 7 bytes" |
//! | [`EllT2D24`] | (2, 24) | 32 bit | one per `u32` | "very fast register access when stored in a 32-bit integer array" |
//! | [`EllT2D16`] | (2, 16) | 24 bit | three bytes per register | martingale optimum, MVP 2.77; "fits exactly into 3 bytes" |
//! | [`EllT1D9`] | (1, 9) | 16 bit | one per `u16` | byte-aligned fallback, MVP 3.90 |
//!
//! Every specialized sketch is *bit-for-bit state-equivalent* to the
//! generic sketch with the same configuration: inserting the same hash
//! stream yields identical register values, and [`to_dense`](EllT2D20::to_dense)
//! /[`from_dense`](EllT2D20::from_dense) convert losslessly in both
//! directions. The equivalence is enforced by the unit tests below and by
//! property tests in the crate's test suite; the speedup is measured by
//! the `ablation` benchmark of the `ell-bench` crate.

use crate::config::{EllConfig, EllError};
use crate::martingale::MartingaleEstimator;
use crate::ml;
use crate::registers;
use crate::sketch::ExaLogLog;
use crate::theory;
use ell_hash::Hasher64;

/// The common interface of the hardcoded sketches, enabling generic
/// composition such as [`SpecializedMartingale`].
pub trait SpecializedSketch {
    /// The configuration this sketch is specialized for.
    fn config(&self) -> &EllConfig;
    /// Inserts a hash; on a state change returns the modified register's
    /// `(old, new)` values.
    fn insert_hash_tracked(&mut self, h: u64) -> Option<(u64, u64)>;
    /// The bias-corrected ML estimate.
    fn ml_estimate(&self) -> f64;
}

/// Generates the shared (storage-independent) API surface of a
/// specialized sketch. The storage layout, `register`/`set_register`,
/// and `insert_hash` stay hand-written per type — they *are* the
/// specialization.
macro_rules! specialized_common {
    ($name:ident, $t:literal, $d:literal) => {
        impl $name {
            /// Update-value resolution parameter (fixed at compile time).
            pub const T: u8 = $t;
            /// Indicator-bit count (fixed at compile time).
            pub const D: u8 = $d;

            /// The configuration this sketch is specialized for.
            #[inline]
            #[must_use]
            pub fn config(&self) -> &EllConfig {
                &self.cfg
            }

            /// Precision parameter p.
            #[inline]
            #[must_use]
            pub fn p(&self) -> u8 {
                self.cfg.p()
            }

            /// Number of registers m = 2^p.
            #[inline]
            #[must_use]
            pub fn m(&self) -> usize {
                self.cfg.m()
            }

            /// Hashes `element` with `hasher` and inserts it.
            #[inline]
            pub fn insert<H: Hasher64 + ?Sized>(&mut self, hasher: &H, element: &[u8]) -> bool {
                self.insert_hash(hasher.hash_bytes(element))
            }

            /// Inserts a whole slice of pre-hashed elements — the batched
            /// ingest hot path, bit-for-bit equivalent to sequential
            /// [`Self::insert_hash`] calls in the same order.
            ///
            /// The four-way unrolled body gives the optimizer a window of
            /// independent hardcoded decompose/update chains to overlap;
            /// the hardcoded (t, d) insert is fully inlined, so no
            /// per-element dispatch survives.
            pub fn insert_hashes(&mut self, hashes: &[u64]) {
                let mut chunks = hashes.chunks_exact(4);
                for c in &mut chunks {
                    self.insert_hash(c[0]);
                    self.insert_hash(c[1]);
                    self.insert_hash(c[2]);
                    self.insert_hash(c[3]);
                }
                for &h in chunks.remainder() {
                    self.insert_hash(h);
                }
            }

            /// Iterates over all m register values.
            pub fn registers(&self) -> impl Iterator<Item = u64> + '_ {
                (0..self.m()).map(move |i| self.register(i))
            }

            /// Whether no element has been recorded yet.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.registers().all(|r| r == 0)
            }

            /// The bias-corrected maximum-likelihood estimate, identical
            /// to [`ExaLogLog::estimate`] on the equivalent dense state.
            #[must_use]
            pub fn estimate(&self) -> f64 {
                let coeffs = ml::compute_coefficients(&self.cfg, self.registers());
                let raw = ml::ml_estimate_from_coefficients(&coeffs, self.cfg.m() as f64);
                let c = theory::bias_correction_c(Self::T, Self::D);
                raw / (1.0 + c / self.cfg.m() as f64)
            }

            /// In-place merge with a sketch of the same precision
            /// (Algorithm 5 applied register-wise).
            pub fn merge_from(&mut self, other: &Self) -> Result<(), EllError> {
                if self.cfg != other.cfg {
                    return Err(EllError::IncompatibleSketches {
                        reason: format!("{} vs {}", self.cfg, other.cfg),
                    });
                }
                for i in 0..self.m() {
                    let merged = registers::merge(self.register(i), other.register(i), Self::D);
                    self.set_register(i, merged);
                }
                Ok(())
            }

            /// Converts into the equivalent generic sketch.
            #[must_use]
            pub fn to_dense(&self) -> ExaLogLog {
                let mut dense = ExaLogLog::new(self.cfg);
                for (i, r) in self.registers().enumerate() {
                    dense.set_register_unchecked(i, r);
                }
                dense
            }

            /// Builds a specialized sketch from a generic one with the
            /// matching configuration.
            pub fn from_dense(dense: &ExaLogLog) -> Result<Self, EllError> {
                let cfg = *dense.config();
                if cfg.t() != Self::T || cfg.d() != Self::D {
                    return Err(EllError::IncompatibleSketches {
                        reason: format!(
                            "{cfg} cannot back a specialized ELL({}, {}) sketch",
                            Self::T,
                            Self::D
                        ),
                    });
                }
                let mut s = Self::new(cfg.p())?;
                for (i, r) in dense.registers().enumerate() {
                    s.set_register(i, r);
                }
                Ok(s)
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!(stringify!($name), "(p={})"), self.p())
            }
        }

        impl SpecializedSketch for $name {
            fn config(&self) -> &EllConfig {
                &self.cfg
            }
            fn insert_hash_tracked(&mut self, h: u64) -> Option<(u64, u64)> {
                $name::insert_hash_tracked(self, h)
            }
            fn ml_estimate(&self) -> f64 {
                self.estimate()
            }
        }
    };
}

/// Martingale (HIP) estimation over a hardcoded sketch — the pairing
/// the paper's §2.4 singles out: the martingale optimum ELL(2, 16) with
/// its 3-byte registers gets both the fast insert path *and* the
/// stronger single-stream estimator.
///
/// State-change probabilities are maintained exactly as in
/// [`crate::MartingaleExaLogLog`]; for the same hash stream both
/// produce bit-identical estimates (verified by the tests).
///
/// ```
/// use exaloglog::{EllT2D16, SpecializedMartingale};
///
/// let mut counter = SpecializedMartingale::new(EllT2D16::new(10).unwrap());
/// for h in (0..50_000u64).map(ell_hash::mix64) {
///     counter.insert_hash(h);
/// }
/// let est = counter.estimate();
/// assert!((est / 50_000.0 - 1.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpecializedMartingale<S> {
    sketch: S,
    estimator: MartingaleEstimator,
}

impl<S: SpecializedSketch> SpecializedMartingale<S> {
    /// Wraps an (empty) specialized sketch.
    ///
    /// # Panics
    ///
    /// Panics if the sketch has already recorded elements — the
    /// martingale estimator must observe every state change from the
    /// start.
    #[must_use]
    pub fn new(sketch: S) -> Self
    where
        S: Clone,
    {
        SpecializedMartingale {
            sketch,
            estimator: MartingaleEstimator::new(),
        }
    }

    /// Inserts an element by its 64-bit hash, updating the online
    /// estimate on every state change. Returns whether the state changed.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) -> bool {
        if let Some((old, new)) = self.sketch.insert_hash_tracked(h) {
            let cfg = *self.sketch.config();
            let h_old = registers::change_probability(&cfg, old);
            let h_new = registers::change_probability(&cfg, new);
            self.estimator.on_state_change(h_old, h_new);
            true
        } else {
            false
        }
    }

    /// Hashes `element` with `hasher` and inserts it.
    #[inline]
    pub fn insert<H: Hasher64 + ?Sized>(&mut self, hasher: &H, element: &[u8]) -> bool {
        self.insert_hash(hasher.hash_bytes(element))
    }

    /// The unbiased martingale estimate (equation (23) bookkeeping).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.estimator.estimate()
    }

    /// The ML estimate of the wrapped sketch (useful after merging
    /// elsewhere invalidated the martingale stream assumption).
    #[must_use]
    pub fn ml_estimate(&self) -> f64 {
        self.sketch.ml_estimate()
    }

    /// The wrapped sketch.
    #[must_use]
    pub fn sketch(&self) -> &S {
        &self.sketch
    }

    /// Unwraps into the plain sketch, discarding the estimator.
    #[must_use]
    pub fn into_sketch(self) -> S {
        self.sketch
    }
}

// ---------------------------------------------------------------------
// ELL(2, 20) — 28-bit registers, two per u64 word.
// ---------------------------------------------------------------------

/// Hardcoded ELL(2, 20): the paper's space optimum (MVP 3.67, 43 % below
/// 6-bit HLL). Registers are 28 bits; a pair occupies the low 56 bits of
/// one `u64` word, realizing the paper's "two registers per 7 bytes"
/// observation without sub-byte addressing.
///
/// ```
/// use exaloglog::{EllT2D20, ExaLogLog};
///
/// let mut fast = EllT2D20::new(10).unwrap();
/// let mut generic = ExaLogLog::with_params(2, 20, 10).unwrap();
/// for h in (0..10_000u64).map(ell_hash::mix64) {
///     fast.insert_hash(h);
///     generic.insert_hash(h);
/// }
/// // Bit-identical state and estimate — just a faster insert path.
/// assert_eq!(fast.to_dense(), generic);
/// assert_eq!(fast.estimate(), generic.estimate());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct EllT2D20 {
    cfg: EllConfig,
    /// `m/2` words, each holding registers `2w` (bits 0..28) and
    /// `2w + 1` (bits 28..56).
    words: Vec<u64>,
    /// `h | nlz_cap` caps the number of leading zeros at 64 − p − t.
    nlz_cap: u64,
}

const MASK28: u64 = (1 << 28) - 1;
const IND20: u64 = (1 << 20) - 1;

/// Register-update core with d = 20 hardcoded; mirrors
/// [`registers::update`] exactly.
#[inline]
fn update_d20(r: u64, k: u64) -> u64 {
    let u = r >> 20;
    if k > u {
        let delta = k - u;
        let low = (1u64 << 20) | (r & IND20);
        (k << 20) | if delta <= 20 { low >> delta } else { 0 }
    } else if k < u && u - k <= 20 {
        r | (1u64 << (20 - (u - k)))
    } else {
        r
    }
}

impl EllT2D20 {
    /// Creates an empty sketch with m = 2^p registers.
    pub fn new(p: u8) -> Result<Self, EllError> {
        let cfg = EllConfig::new(2, 20, p)?;
        Ok(EllT2D20 {
            words: vec![0; cfg.m() / 2],
            nlz_cap: ell_bitpack::mask(u32::from(p) + 2),
            cfg,
        })
    }

    /// Inserts an element by its 64-bit hash (Algorithm 2 with t = 2,
    /// d = 20 folded into constants). Returns whether the state changed.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) -> bool {
        self.insert_hash_tracked(h).is_some()
    }

    /// Like [`EllT2D20::insert_hash`] but reports the modified register's
    /// `(old, new)` values, enabling martingale bookkeeping.
    #[inline]
    pub fn insert_hash_tracked(&mut self, h: u64) -> Option<(u64, u64)> {
        let i = ((h >> 2) as usize) & (self.cfg.m() - 1);
        let a = h | self.nlz_cap;
        let k = (u64::from(a.leading_zeros()) << 2) + (h & 3) + 1;
        let shift = ((i & 1) as u32) * 28;
        let word = self.words[i >> 1];
        let r = (word >> shift) & MASK28;
        let new = update_d20(r, k);
        if new != r {
            self.words[i >> 1] = (word & !(MASK28 << shift)) | (new << shift);
            Some((r, new))
        } else {
            None
        }
    }

    /// Value of register `i`.
    #[inline]
    #[must_use]
    pub fn register(&self, i: usize) -> u64 {
        (self.words[i >> 1] >> (((i & 1) as u32) * 28)) & MASK28
    }

    #[inline]
    fn set_register(&mut self, i: usize, r: u64) {
        let shift = ((i & 1) as u32) * 28;
        let word = self.words[i >> 1];
        self.words[i >> 1] = (word & !(MASK28 << shift)) | ((r & MASK28) << shift);
    }

    /// Resets the sketch to its empty state without reallocating.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Total in-memory footprint in bytes. The word array spends 8 bytes
    /// per register pair where the dense bit-packed layout spends 7 — the
    /// specialization trades 1 bit/register of space for word-aligned
    /// access (convert to [`ExaLogLog`] for wire-format serialization).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + self.words.len() * 8
    }
}

specialized_common!(EllT2D20, 2, 20);

// ---------------------------------------------------------------------
// ELL(2, 24) — 32-bit registers in a u32 array.
// ---------------------------------------------------------------------

/// Hardcoded ELL(2, 24): registers fill exactly 32 bits (MVP 3.78). The
/// paper recommends this configuration for "very fast register access
/// when stored in a 32-bit integer array" and for CAS-based concurrent
/// updates (see [`crate::atomic`] for the lock-free variant).
#[derive(Clone, PartialEq, Eq)]
pub struct EllT2D24 {
    cfg: EllConfig,
    regs: Vec<u32>,
    nlz_cap: u64,
}

const IND24: u32 = (1 << 24) - 1;

/// Register-update core with d = 24 hardcoded, operating on `u32`.
#[inline]
fn update_d24(r: u32, k: u32) -> u32 {
    let u = r >> 24;
    if k > u {
        let delta = k - u;
        let low = (1u32 << 24) | (r & IND24);
        (k << 24) | if delta <= 24 { low >> delta } else { 0 }
    } else if k < u && u - k <= 24 {
        r | (1u32 << (24 - (u - k)))
    } else {
        r
    }
}

impl EllT2D24 {
    /// Creates an empty sketch with m = 2^p registers.
    pub fn new(p: u8) -> Result<Self, EllError> {
        let cfg = EllConfig::new(2, 24, p)?;
        Ok(EllT2D24 {
            regs: vec![0; cfg.m()],
            nlz_cap: ell_bitpack::mask(u32::from(p) + 2),
            cfg,
        })
    }

    /// Inserts an element by its 64-bit hash. Returns whether the state
    /// changed.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) -> bool {
        self.insert_hash_tracked(h).is_some()
    }

    /// Like [`EllT2D24::insert_hash`] but reports the modified register's
    /// `(old, new)` values, enabling martingale bookkeeping.
    #[inline]
    pub fn insert_hash_tracked(&mut self, h: u64) -> Option<(u64, u64)> {
        let i = ((h >> 2) as usize) & (self.cfg.m() - 1);
        let a = h | self.nlz_cap;
        let k = (a.leading_zeros() << 2) + ((h & 3) as u32) + 1;
        let r = self.regs[i];
        let new = update_d24(r, k);
        if new != r {
            self.regs[i] = new;
            Some((u64::from(r), u64::from(new)))
        } else {
            None
        }
    }

    /// Value of register `i`.
    #[inline]
    #[must_use]
    pub fn register(&self, i: usize) -> u64 {
        u64::from(self.regs[i])
    }

    #[inline]
    fn set_register(&mut self, i: usize, r: u64) {
        self.regs[i] = r as u32;
    }

    /// Resets the sketch to its empty state without reallocating.
    pub fn clear(&mut self) {
        self.regs.fill(0);
    }

    /// Total in-memory footprint in bytes; identical to the dense layout
    /// because 32-bit registers are already byte-aligned.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + self.regs.len() * 4
    }
}

specialized_common!(EllT2D24, 2, 24);

// ---------------------------------------------------------------------
// ELL(2, 16) — 24-bit registers, three bytes each.
// ---------------------------------------------------------------------

/// Hardcoded ELL(2, 16): the martingale-estimation optimum (MVP 2.77,
/// 33 % below HLL). Registers are 24 bits and stored as three
/// little-endian bytes each — "the register size is 24 bits and
/// therefore fits exactly into 3 bytes, register access is also
/// relatively simple" (§2.4).
#[derive(Clone, PartialEq, Eq)]
pub struct EllT2D16 {
    cfg: EllConfig,
    /// `3·m` bytes; register `i` occupies bytes `3i..3i+3`.
    bytes: Vec<u8>,
    nlz_cap: u64,
}

const IND16: u32 = (1 << 16) - 1;

/// Register-update core with d = 16 hardcoded, operating on `u32`
/// (values never exceed 24 bits).
#[inline]
fn update_d16(r: u32, k: u32) -> u32 {
    let u = r >> 16;
    if k > u {
        let delta = k - u;
        let low = (1u32 << 16) | (r & IND16);
        (k << 16) | if delta <= 16 { low >> delta } else { 0 }
    } else if k < u && u - k <= 16 {
        r | (1u32 << (16 - (u - k)))
    } else {
        r
    }
}

impl EllT2D16 {
    /// Creates an empty sketch with m = 2^p registers.
    pub fn new(p: u8) -> Result<Self, EllError> {
        let cfg = EllConfig::new(2, 16, p)?;
        Ok(EllT2D16 {
            bytes: vec![0; cfg.m() * 3],
            nlz_cap: ell_bitpack::mask(u32::from(p) + 2),
            cfg,
        })
    }

    /// Inserts an element by its 64-bit hash. Returns whether the state
    /// changed.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) -> bool {
        self.insert_hash_tracked(h).is_some()
    }

    /// Like [`EllT2D16::insert_hash`] but reports the modified register's
    /// `(old, new)` values, enabling martingale bookkeeping.
    #[inline]
    pub fn insert_hash_tracked(&mut self, h: u64) -> Option<(u64, u64)> {
        let i = ((h >> 2) as usize) & (self.cfg.m() - 1);
        let a = h | self.nlz_cap;
        let k = (a.leading_zeros() << 2) + ((h & 3) as u32) + 1;
        let r = self.load(i);
        let new = update_d16(r, k);
        if new != r {
            self.store(i, new);
            Some((u64::from(r), u64::from(new)))
        } else {
            None
        }
    }

    #[inline]
    fn load(&self, i: usize) -> u32 {
        let b = &self.bytes[3 * i..3 * i + 3];
        u32::from(b[0]) | u32::from(b[1]) << 8 | u32::from(b[2]) << 16
    }

    #[inline]
    fn store(&mut self, i: usize, r: u32) {
        let b = &mut self.bytes[3 * i..3 * i + 3];
        b[0] = r as u8;
        b[1] = (r >> 8) as u8;
        b[2] = (r >> 16) as u8;
    }

    /// Value of register `i`.
    #[inline]
    #[must_use]
    pub fn register(&self, i: usize) -> u64 {
        u64::from(self.load(i))
    }

    #[inline]
    fn set_register(&mut self, i: usize, r: u64) {
        self.store(i, r as u32);
    }

    /// Resets the sketch to its empty state without reallocating.
    pub fn clear(&mut self) {
        self.bytes.fill(0);
    }

    /// Total in-memory footprint in bytes; identical to the dense layout
    /// (24-bit registers are byte-aligned).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + self.bytes.len()
    }
}

specialized_common!(EllT2D16, 2, 16);

// ---------------------------------------------------------------------
// ELL(1, 9) — 16-bit registers in a u16 array.
// ---------------------------------------------------------------------

/// Hardcoded ELL(1, 9): registers fill exactly 16 bits (MVP 3.90). Less
/// space-efficient than the t = 2 configurations but with the simplest
/// possible register access.
#[derive(Clone, PartialEq, Eq)]
pub struct EllT1D9 {
    cfg: EllConfig,
    regs: Vec<u16>,
    nlz_cap: u64,
}

const IND9: u16 = (1 << 9) - 1;

/// Register-update core with d = 9 hardcoded, operating on `u16`.
#[inline]
fn update_d9(r: u16, k: u16) -> u16 {
    let u = r >> 9;
    if k > u {
        let delta = k - u;
        let low = (1u16 << 9) | (r & IND9);
        (k << 9) | if delta <= 9 { low >> delta } else { 0 }
    } else if k < u && u - k <= 9 {
        r | (1u16 << (9 - (u - k)))
    } else {
        r
    }
}

impl EllT1D9 {
    /// Creates an empty sketch with m = 2^p registers.
    pub fn new(p: u8) -> Result<Self, EllError> {
        let cfg = EllConfig::new(1, 9, p)?;
        Ok(EllT1D9 {
            regs: vec![0; cfg.m()],
            nlz_cap: ell_bitpack::mask(u32::from(p) + 1),
            cfg,
        })
    }

    /// Inserts an element by its 64-bit hash. Returns whether the state
    /// changed.
    #[inline]
    pub fn insert_hash(&mut self, h: u64) -> bool {
        self.insert_hash_tracked(h).is_some()
    }

    /// Like [`EllT1D9::insert_hash`] but reports the modified register's
    /// `(old, new)` values, enabling martingale bookkeeping.
    #[inline]
    pub fn insert_hash_tracked(&mut self, h: u64) -> Option<(u64, u64)> {
        let i = ((h >> 1) as usize) & (self.cfg.m() - 1);
        let a = h | self.nlz_cap;
        let k = ((a.leading_zeros() << 1) + ((h & 1) as u32) + 1) as u16;
        let r = self.regs[i];
        let new = update_d9(r, k);
        if new != r {
            self.regs[i] = new;
            Some((u64::from(r), u64::from(new)))
        } else {
            None
        }
    }

    /// Value of register `i`.
    #[inline]
    #[must_use]
    pub fn register(&self, i: usize) -> u64 {
        u64::from(self.regs[i])
    }

    #[inline]
    fn set_register(&mut self, i: usize, r: u64) {
        self.regs[i] = r as u16;
    }

    /// Resets the sketch to its empty state without reallocating.
    pub fn clear(&mut self) {
        self.regs.fill(0);
    }

    /// Total in-memory footprint in bytes; identical to the dense layout
    /// (16-bit registers are byte-aligned).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>() + self.regs.len() * 2
    }
}

specialized_common!(EllT1D9, 1, 9);

#[cfg(test)]
mod tests {
    use super::*;
    use ell_hash::SplitMix64;

    fn stream(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    /// Inserts `hashes` into both the specialized and the generic sketch
    /// and asserts bit-identical register state plus identical estimates.
    macro_rules! equivalence_test {
        ($name:ident, $ty:ty, $t:literal, $d:literal) => {
            #[test]
            fn $name() {
                for p in [2u8, 4, 8, 11] {
                    let mut fast = <$ty>::new(p).unwrap();
                    let mut dense = ExaLogLog::with_params($t, $d, p).unwrap();
                    for &h in &stream(1000 + u64::from(p), 30_000) {
                        let changed_fast = fast.insert_hash(h);
                        let changed_dense = dense.insert_hash(h);
                        assert_eq!(changed_fast, changed_dense, "p={p} h={h:#x}");
                    }
                    for i in 0..dense.config().m() {
                        assert_eq!(fast.register(i), dense.register(i), "p={p} register {i}");
                    }
                    assert_eq!(fast.estimate(), dense.estimate(), "p={p}");
                    // Conversions are lossless in both directions.
                    assert_eq!(fast.to_dense(), dense);
                    assert_eq!(<$ty>::from_dense(&dense).unwrap(), fast);
                }
            }
        };
    }

    equivalence_test!(t2d20_matches_generic, EllT2D20, 2, 20);
    equivalence_test!(t2d24_matches_generic, EllT2D24, 2, 24);
    equivalence_test!(t2d16_matches_generic, EllT2D16, 2, 16);
    equivalence_test!(t1d9_matches_generic, EllT1D9, 1, 9);

    #[test]
    fn merge_matches_generic_merge() {
        let mut a = EllT2D20::new(6).unwrap();
        let mut b = EllT2D20::new(6).unwrap();
        let mut da = ExaLogLog::with_params(2, 20, 6).unwrap();
        let mut db = da.clone();
        for &h in &stream(7, 5000) {
            a.insert_hash(h);
            da.insert_hash(h);
        }
        for &h in &stream(8, 4000) {
            b.insert_hash(h);
            db.insert_hash(h);
        }
        a.merge_from(&b).unwrap();
        da.merge_from(&db).unwrap();
        assert_eq!(a.to_dense(), da);
    }

    #[test]
    fn merge_rejects_mismatched_precision() {
        let mut a = EllT2D24::new(6).unwrap();
        let b = EllT2D24::new(7).unwrap();
        assert!(a.merge_from(&b).is_err());
    }

    #[test]
    fn from_dense_rejects_wrong_parameters() {
        let dense = ExaLogLog::with_params(2, 20, 6).unwrap();
        assert!(EllT2D24::from_dense(&dense).is_err());
        assert!(EllT2D16::from_dense(&dense).is_err());
        assert!(EllT1D9::from_dense(&dense).is_err());
        assert!(EllT2D20::from_dense(&dense).is_ok());
    }

    #[test]
    fn clear_and_empty() {
        let mut s = EllT2D16::new(5).unwrap();
        assert!(s.is_empty());
        for &h in &stream(3, 100) {
            s.insert_hash(h);
        }
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn estimates_track_truth() {
        let n = 50_000usize;
        let hashes = stream(99, n);
        macro_rules! check {
            ($ty:ty) => {
                let mut s = <$ty>::new(10).unwrap();
                for &h in &hashes {
                    s.insert_hash(h);
                }
                let est = s.estimate();
                let rel = est / n as f64 - 1.0;
                assert!(
                    rel.abs() < 0.08,
                    concat!(stringify!($ty), ": estimate {} off by {:+.2} %"),
                    est,
                    rel * 100.0
                );
            };
        }
        check!(EllT2D20);
        check!(EllT2D24);
        check!(EllT2D16);
        check!(EllT1D9);
    }

    #[test]
    fn specialized_martingale_matches_generic_martingale() {
        // The fast-path martingale must be bit-identical to
        // MartingaleExaLogLog on the same stream: same register values,
        // same μ trajectory, same estimate.
        use crate::martingale::MartingaleExaLogLog;
        let mut fast = SpecializedMartingale::new(EllT2D16::new(8).unwrap());
        let mut generic = MartingaleExaLogLog::with_params(2, 16, 8).unwrap();
        for &h in &stream(404, 20_000) {
            assert_eq!(fast.insert_hash(h), generic.insert_hash(h));
        }
        assert_eq!(fast.estimate(), generic.estimate());
        assert_eq!(fast.ml_estimate(), generic.ml_estimate());
        let n = 20_000.0;
        let rel = fast.estimate() / n - 1.0;
        assert!(rel.abs() < 0.10, "martingale estimate off by {rel:+.3}");
    }

    #[test]
    fn specialized_martingale_over_every_type() {
        let hashes = stream(505, 5000);
        macro_rules! check {
            ($ty:ty) => {
                let mut m = SpecializedMartingale::new(<$ty>::new(8).unwrap());
                for &h in &hashes {
                    m.insert_hash(h);
                }
                let rel = m.estimate() / 5000.0 - 1.0;
                assert!(
                    rel.abs() < 0.12,
                    concat!(stringify!($ty), " martingale estimate off by {:.3}"),
                    rel
                );
                // ML estimate remains available from the wrapped sketch.
                assert!((m.ml_estimate() / 5000.0 - 1.0).abs() < 0.12);
                let inner = m.into_sketch();
                assert!(!inner.is_empty());
            };
        }
        check!(EllT2D20);
        check!(EllT2D24);
        check!(EllT2D16);
        check!(EllT1D9);
    }

    #[test]
    fn memory_layouts_match_expectation() {
        // p = 8 → 256 registers.
        let base20 = EllT2D20::new(8).unwrap().memory_bytes();
        assert!(base20 >= 128 * 8, "128 words of 8 bytes");
        let base24 = EllT2D24::new(8).unwrap().memory_bytes();
        assert!((1024..1024 + 96).contains(&base24));
        let base16 = EllT2D16::new(8).unwrap().memory_bytes();
        assert!((768..768 + 96).contains(&base16));
        let base9 = EllT1D9::new(8).unwrap().memory_bytes();
        assert!((512..512 + 96).contains(&base9));
    }

    #[test]
    fn update_cores_match_generic_register_update() {
        // Exhaustive-ish cross-check of the hardcoded update cores against
        // the generic register update over random value sequences.
        let mut rng = SplitMix64::new(0xDEC0DE);
        for _ in 0..2000 {
            let mut r20 = 0u64;
            let mut r24 = 0u32;
            let mut r16 = 0u32;
            let mut r9 = 0u16;
            let mut g20 = 0u64;
            let mut g24 = 0u64;
            let mut g16 = 0u64;
            let mut g9 = 0u64;
            for _ in 0..12 {
                let k = rng.next_u64() % 200 + 1;
                r20 = update_d20(r20, k);
                g20 = registers::update(g20, k, 20);
                assert_eq!(r20, g20);
                r24 = update_d24(r24, k as u32);
                g24 = registers::update(g24, k, 24);
                assert_eq!(u64::from(r24), g24);
                r16 = update_d16(r16, k as u32);
                g16 = registers::update(g16, k, 16);
                assert_eq!(u64::from(r16), g16);
                let k9 = k % 120 + 1;
                r9 = update_d9(r9, k9 as u16);
                g9 = registers::update(g9, k9, 9);
                assert_eq!(u64::from(r9), g9);
            }
        }
    }
}
