//! [`DistinctCounter`] implementations for every sketch type in this
//! crate, plugging the ExaLogLog family into the workspace-wide trait
//! layer (`ell-core`).
//!
//! The generic [`ExaLogLog`], the martingale-tracked sketch, the sparse
//! and specialized variants, and [`TokenSet`] route `insert_hashes` to
//! their unrolled batch hot paths; the others inherit the trait's
//! default loop. All implementations keep
//! the batch-equivalence guarantee documented in `ell-core` — the
//! cross-implementation property tests at the workspace root
//! (`tests/trait_laws.rs`) compare serialized states to enforce it.

use crate::adaptive::AdaptiveExaLogLog;
use crate::atomic::AtomicExaLogLog;
use crate::martingale::{MartingaleEstimator, MartingaleExaLogLog};
use crate::sketch::ExaLogLog;
use crate::sparse::SparseExaLogLog;
use crate::specialized::{EllT1D9, EllT2D16, EllT2D20, EllT2D24};
use crate::token::TokenSet;
use ell_core::{DistinctCounter, SketchError};

/// Serialization magic for the martingale-tracked wire format.
const MARTINGALE_MAGIC: &[u8; 4] = b"ELLM";

impl DistinctCounter for ExaLogLog {
    fn name(&self) -> String {
        let c = self.config();
        format!("ELL(t={},d={},p={},ML)", c.t(), c.d(), c.p())
    }
    fn insert_hash(&mut self, h: u64) {
        ExaLogLog::insert_hash(self, h);
    }
    fn insert_hashes(&mut self, hashes: &[u64]) {
        ExaLogLog::insert_hashes(self, hashes);
    }
    fn estimate(&self) -> f64 {
        ExaLogLog::estimate(self)
    }
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        ExaLogLog::merge_from(self, other).map_err(Into::into)
    }
    fn to_bytes(&self) -> Vec<u8> {
        ExaLogLog::to_bytes(self)
    }
    fn from_bytes(bytes: &[u8]) -> Result<Self, SketchError> {
        ExaLogLog::from_bytes(bytes).map_err(Into::into)
    }
    fn memory_bits(&self) -> usize {
        ExaLogLog::memory_bytes(self) * 8
    }
    fn serialized_bytes(&self) -> usize {
        self.register_bytes().len()
    }
    fn constant_time_insert(&self) -> bool {
        true
    }
}

impl DistinctCounter for MartingaleExaLogLog {
    fn name(&self) -> String {
        let c = self.sketch().config();
        format!("ELL(t={},d={},p={},marting.)", c.t(), c.d(), c.p())
    }
    fn insert_hash(&mut self, h: u64) {
        MartingaleExaLogLog::insert_hash(self, h);
    }
    fn insert_hashes(&mut self, hashes: &[u64]) {
        MartingaleExaLogLog::insert_hashes(self, hashes);
    }
    fn estimate(&self) -> f64 {
        MartingaleExaLogLog::estimate(self)
    }
    fn merge_from(&mut self, _other: &Self) -> Result<(), SketchError> {
        Err(SketchError::Unsupported {
            reason: "martingale estimation assumes one unbroken insert stream (paper §3.3); \
                     merge the underlying sketches via into_sketch() instead"
                .into(),
        })
    }
    fn to_bytes(&self) -> Vec<u8> {
        let payload = self.sketch().to_bytes();
        let mut out = Vec::with_capacity(20 + payload.len());
        out.extend_from_slice(MARTINGALE_MAGIC);
        out.extend_from_slice(&self.estimate().to_le_bytes());
        out.extend_from_slice(&self.state_change_probability().to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
    fn from_bytes(bytes: &[u8]) -> Result<Self, SketchError> {
        if bytes.len() < 20 || &bytes[..4] != MARTINGALE_MAGIC {
            return Err(SketchError::Corrupt {
                reason: "bad martingale header".into(),
            });
        }
        let estimate = f64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
        let mu = f64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        if !estimate.is_finite() || estimate < 0.0 || !(0.0..=1.0).contains(&mu) {
            return Err(SketchError::Corrupt {
                reason: format!("implausible estimator state ({estimate}, {mu})"),
            });
        }
        let sketch = ExaLogLog::from_bytes(&bytes[20..]).map_err(SketchError::from)?;
        Ok(MartingaleExaLogLog::from_parts(
            sketch,
            MartingaleEstimator::from_state(estimate, mu),
        ))
    }
    fn memory_bits(&self) -> usize {
        MartingaleExaLogLog::memory_bytes(self) * 8
    }
    fn serialized_bytes(&self) -> usize {
        // Register payload + the 16-byte (estimate, μ) pair.
        self.sketch().register_bytes().len() + 16
    }
    fn constant_time_insert(&self) -> bool {
        true
    }
}

impl DistinctCounter for SparseExaLogLog {
    fn name(&self) -> String {
        let c = self.config();
        format!("ELL(t={},d={},p={},sparse)", c.t(), c.d(), c.p())
    }
    fn insert_hash(&mut self, h: u64) {
        SparseExaLogLog::insert_hash(self, h);
    }
    fn insert_hashes(&mut self, hashes: &[u64]) {
        SparseExaLogLog::insert_hashes(self, hashes);
    }
    fn estimate(&self) -> f64 {
        SparseExaLogLog::estimate(self)
    }
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        SparseExaLogLog::merge_from(self, other).map_err(Into::into)
    }
    fn to_bytes(&self) -> Vec<u8> {
        SparseExaLogLog::to_bytes(self)
    }
    fn from_bytes(bytes: &[u8]) -> Result<Self, SketchError> {
        SparseExaLogLog::from_bytes(bytes).map_err(Into::into)
    }
    fn memory_bits(&self) -> usize {
        SparseExaLogLog::memory_bytes(self) * 8
    }
    fn constant_time_insert(&self) -> bool {
        // The sparse phase pays O(log n) per token insert.
        false
    }
}

impl DistinctCounter for AdaptiveExaLogLog {
    fn name(&self) -> String {
        let c = self.config();
        format!("ELL(t={},d={},p={},adaptive)", c.t(), c.d(), c.p())
    }
    fn insert_hash(&mut self, h: u64) {
        AdaptiveExaLogLog::insert_hash(self, h);
    }
    fn insert_hashes(&mut self, hashes: &[u64]) {
        AdaptiveExaLogLog::insert_hashes(self, hashes);
    }
    fn estimate(&self) -> f64 {
        AdaptiveExaLogLog::estimate(self)
    }
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        AdaptiveExaLogLog::merge_from(self, other).map_err(Into::into)
    }
    fn to_bytes(&self) -> Vec<u8> {
        AdaptiveExaLogLog::to_bytes(self)
    }
    fn from_bytes(bytes: &[u8]) -> Result<Self, SketchError> {
        AdaptiveExaLogLog::from_bytes(bytes).map_err(Into::into)
    }
    fn memory_bits(&self) -> usize {
        AdaptiveExaLogLog::memory_bytes(self) * 8
    }
    fn constant_time_insert(&self) -> bool {
        // The sparse phase pays O(log n) per token insert.
        false
    }
}

impl DistinctCounter for AtomicExaLogLog {
    fn name(&self) -> String {
        let c = self.config();
        format!("ELL(t={},d={},p={},atomic)", c.t(), c.d(), c.p())
    }
    fn insert_hash(&mut self, h: u64) {
        AtomicExaLogLog::insert_hash(self, h);
    }
    fn estimate(&self) -> f64 {
        self.snapshot().estimate()
    }
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        AtomicExaLogLog::merge_from(self, &other.snapshot()).map_err(Into::into)
    }
    fn to_bytes(&self) -> Vec<u8> {
        self.snapshot().to_bytes()
    }
    fn from_bytes(bytes: &[u8]) -> Result<Self, SketchError> {
        let dense = ExaLogLog::from_bytes(bytes).map_err(SketchError::from)?;
        Ok(AtomicExaLogLog::from_sketch(&dense))
    }
    fn memory_bits(&self) -> usize {
        AtomicExaLogLog::memory_bytes(self) * 8
    }
    fn serialized_bytes(&self) -> usize {
        self.config().register_array_bytes()
    }
    fn constant_time_insert(&self) -> bool {
        true
    }
}

impl DistinctCounter for TokenSet {
    fn name(&self) -> String {
        format!("TokenSet(v={})", self.v())
    }
    fn insert_hash(&mut self, h: u64) {
        TokenSet::insert_hash(self, h);
    }
    fn estimate(&self) -> f64 {
        TokenSet::estimate(self)
    }
    fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        TokenSet::merge_from(self, other).map_err(Into::into)
    }
    fn to_bytes(&self) -> Vec<u8> {
        TokenSet::to_bytes(self)
    }
    fn from_bytes(bytes: &[u8]) -> Result<Self, SketchError> {
        TokenSet::from_bytes(bytes).map_err(Into::into)
    }
    fn memory_bits(&self) -> usize {
        (core::mem::size_of::<Self>() + self.len() * core::mem::size_of::<u64>()) * 8
    }
    fn serialized_bytes(&self) -> usize {
        // The tight (v+6)-bit encoding plus the 13-byte header.
        13 + self.storage_bits().div_ceil(8)
    }
    fn constant_time_insert(&self) -> bool {
        // Sorted-vector insertion costs O(n) in the worst case.
        false
    }
}

/// Implements [`DistinctCounter`] for a hardcoded specialized sketch by
/// converting through the bit-identical dense representation for the
/// serialization surface.
macro_rules! specialized_counter {
    ($ty:ident, $t:literal, $d:literal) => {
        impl DistinctCounter for $ty {
            fn name(&self) -> String {
                format!("ELL(t={},d={},p={},hardcoded)", $t, $d, self.config().p())
            }
            fn insert_hash(&mut self, h: u64) {
                $ty::insert_hash(self, h);
            }
            fn insert_hashes(&mut self, hashes: &[u64]) {
                $ty::insert_hashes(self, hashes);
            }
            fn estimate(&self) -> f64 {
                $ty::estimate(self)
            }
            fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
                $ty::merge_from(self, other).map_err(Into::into)
            }
            fn to_bytes(&self) -> Vec<u8> {
                self.to_dense().to_bytes()
            }
            fn from_bytes(bytes: &[u8]) -> Result<Self, SketchError> {
                let dense = ExaLogLog::from_bytes(bytes).map_err(SketchError::from)?;
                $ty::from_dense(&dense).map_err(Into::into)
            }
            fn memory_bits(&self) -> usize {
                $ty::memory_bytes(self) * 8
            }
            fn serialized_bytes(&self) -> usize {
                // Wire format is the dense register array (plus header).
                self.config().register_array_bytes()
            }
            fn constant_time_insert(&self) -> bool {
                true
            }
        }
    };
}

specialized_counter!(EllT2D20, 2, 20);
specialized_counter!(EllT2D24, 2, 24);
specialized_counter!(EllT2D16, 2, 16);
specialized_counter!(EllT1D9, 1, 9);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EllConfig;
    use ell_core::Sketch;
    use ell_hash::SplitMix64;

    fn stream(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    /// Every implementation in this crate, as a trait object with a
    /// fresh-state constructor — shared by the tests below.
    fn lineup() -> Vec<Box<dyn Sketch>> {
        let cfg = EllConfig::optimal(8).unwrap();
        vec![
            Box::new(ExaLogLog::new(cfg)),
            Box::new(MartingaleExaLogLog::new(cfg)),
            Box::new(SparseExaLogLog::new(cfg).unwrap()),
            Box::new(AdaptiveExaLogLog::new(cfg).unwrap()),
            Box::new(AtomicExaLogLog::new(cfg)),
            Box::new(TokenSet::new(26).unwrap()),
            Box::new(EllT2D20::new(8).unwrap()),
            Box::new(EllT2D24::new(8).unwrap()),
            Box::new(EllT2D16::new(8).unwrap()),
            Box::new(EllT1D9::new(8).unwrap()),
        ]
    }

    #[test]
    fn every_impl_counts_through_the_facade() {
        let hashes = stream(71, 20_000);
        for mut s in lineup() {
            s.insert_hashes(&hashes);
            let est = s.estimate();
            let rel = est / 20_000.0 - 1.0;
            assert!(rel.abs() < 0.15, "{}: {est} off by {rel:+.3}", s.name());
            assert!(s.memory_bits() > 0);
            assert!(s.serialized_bytes() > 0);
            assert!(!s.to_bytes().is_empty());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<String> = lineup().iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), lineup().len());
    }

    #[test]
    fn martingale_roundtrip_preserves_estimator_state() {
        let mut s = MartingaleExaLogLog::with_params(2, 16, 6).unwrap();
        for &h in &stream(5, 5000) {
            s.insert_hash(h);
        }
        let bytes = DistinctCounter::to_bytes(&s);
        let back = <MartingaleExaLogLog as DistinctCounter>::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.estimate(), s.estimate());
        // Corruption is rejected.
        assert!(<MartingaleExaLogLog as DistinctCounter>::from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(<MartingaleExaLogLog as DistinctCounter>::from_bytes(&bad).is_err());
        let mut bad = bytes;
        bad[12..20].copy_from_slice(&2.5f64.to_le_bytes()); // μ > 1
        assert!(<MartingaleExaLogLog as DistinctCounter>::from_bytes(&bad).is_err());
    }

    #[test]
    fn martingale_merge_is_refused() {
        let mut a = MartingaleExaLogLog::with_params(2, 16, 6).unwrap();
        let b = a.clone();
        assert!(matches!(
            DistinctCounter::merge_from(&mut a, &b),
            Err(SketchError::Unsupported { .. })
        ));
    }

    #[test]
    fn atomic_roundtrips_through_dense_wire_format() {
        let cfg = EllConfig::aligned32(6).unwrap();
        let mut a = AtomicExaLogLog::new(cfg);
        for &h in &stream(6, 3000) {
            DistinctCounter::insert_hash(&mut a, h);
        }
        let bytes = DistinctCounter::to_bytes(&a);
        let back = <AtomicExaLogLog as DistinctCounter>::from_bytes(&bytes).unwrap();
        assert_eq!(back.snapshot(), a.snapshot());
        // Wide configurations (36-bit registers) round-trip too now that
        // the atomic path packs registers into u64 words.
        let wide = ExaLogLog::with_params(2, 28, 4).unwrap();
        let wide_back = <AtomicExaLogLog as DistinctCounter>::from_bytes(&wide.to_bytes()).unwrap();
        assert_eq!(wide_back.snapshot(), wide);
    }

    #[test]
    fn specialized_roundtrip_is_dense_compatible() {
        let mut fast = EllT2D20::new(6).unwrap();
        let mut dense = ExaLogLog::with_params(2, 20, 6).unwrap();
        for &h in &stream(7, 4000) {
            fast.insert_hash(h);
            dense.insert_hash(h);
        }
        // Same wire format in both directions.
        assert_eq!(DistinctCounter::to_bytes(&fast), dense.to_bytes());
        let back = <EllT2D20 as DistinctCounter>::from_bytes(&dense.to_bytes()).unwrap();
        assert_eq!(back, fast);
        // Wrong (t, d) is rejected.
        let other = ExaLogLog::with_params(2, 16, 6).unwrap();
        assert!(<EllT2D20 as DistinctCounter>::from_bytes(&other.to_bytes()).is_err());
    }
}
