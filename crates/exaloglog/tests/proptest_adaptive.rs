//! Promotion-equivalence properties of [`AdaptiveExaLogLog`] (§4.3).
//!
//! The adaptive lifecycle is only sound if promotion is *invisible*:
//! a sketch that auto-promoted must be estimate- and state-equivalent
//! to a dense [`ExaLogLog`] fed the same hashes, and merges must give
//! the same result whichever side happens to be sparse or dense.

use exaloglog::{AdaptiveExaLogLog, EllConfig, ExaLogLog};
use proptest::prelude::*;

fn hash_stream(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = ell_hash::SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After auto-promotion the adaptive sketch is bit-for-bit the dense
    /// sketch direct recording would have produced, and the estimates
    /// agree exactly. Streams are sized to comfortably cross break-even
    /// at small p; below break-even, promote() forces the same check.
    #[test]
    fn promotion_is_state_and_estimate_equivalent(
        seed in any::<u64>(),
        n in 0usize..12_000,
        p in 4u8..9,
        chunk in 1usize..2000,
    ) {
        let hashes = hash_stream(seed, n);
        let mut adaptive = AdaptiveExaLogLog::new(EllConfig::optimal(p).unwrap()).unwrap();
        for block in hashes.chunks(chunk) {
            adaptive.insert_hashes(block);
        }
        let mut dense = ExaLogLog::new(EllConfig::optimal(p).unwrap());
        dense.insert_hashes(&hashes);
        if !adaptive.is_sparse() {
            prop_assert_eq!(
                adaptive.to_bytes(),
                dense.to_bytes(),
                "auto-promoted state diverged from direct dense recording"
            );
            prop_assert_eq!(adaptive.estimate(), dense.estimate());
        } else {
            // Token ML below break-even is near-exact but a different
            // estimator; the *promoted* state must still match exactly.
            adaptive.promote();
            prop_assert_eq!(adaptive.to_bytes(), dense.to_bytes());
            prop_assert_eq!(adaptive.estimate(), dense.estimate());
        }
    }

    /// Mixed sparse/dense merges commute: merging a sparse sketch into a
    /// dense one produces the same serialized state as the opposite
    /// order, and both equal direct dense recording of the union.
    #[test]
    fn mixed_phase_merges_commute(
        seed in any::<u64>(),
        n_small in 0usize..300,
        n_big in 6000usize..20_000,
        p in 4u8..8,
    ) {
        let cfg = EllConfig::optimal(p).unwrap();
        let small = hash_stream(seed, n_small);
        let big = hash_stream(seed ^ 0x9E3779B97F4A7C15, n_big);
        let build = |hs: &[u64]| {
            let mut s = AdaptiveExaLogLog::new(cfg).unwrap();
            s.insert_hashes(hs);
            s
        };
        let a = build(&small);
        let b = build(&big);
        prop_assert!(!b.is_sparse(), "big side must be past break-even");

        let mut ab = build(&small);
        ab.merge_from(&b).unwrap();
        let mut ba = build(&big);
        ba.merge_from(&a).unwrap();
        prop_assert_eq!(ab.to_bytes(), ba.to_bytes(), "mixed merge not commutative");

        let mut direct = ExaLogLog::new(cfg);
        direct.insert_hashes(&small);
        direct.insert_hashes(&big);
        prop_assert_eq!(ab.to_bytes(), direct.to_bytes(), "merge diverged from direct union");
    }

    /// Sparse-sparse merges that cross break-even promote exactly like
    /// sequential insertion of the concatenated streams.
    #[test]
    fn sparse_merge_promotes_at_break_even(
        seed in any::<u64>(),
        na in 0usize..4000,
        nb in 0usize..4000,
        p in 4u8..8,
    ) {
        let cfg = EllConfig::optimal(p).unwrap();
        let ha = hash_stream(seed, na);
        let hb = hash_stream(seed ^ 0xD1B54A32D192ED03, nb);
        let build = |hs: &[u64]| {
            let mut s = AdaptiveExaLogLog::new(cfg).unwrap();
            s.insert_hashes(hs);
            s
        };
        let mut merged = build(&ha);
        merged.merge_from(&build(&hb)).unwrap();
        if !merged.is_sparse() {
            // Promotion decision and promoted state are those of the
            // union token set: equal to dense recording of the union.
            let mut direct = ExaLogLog::new(cfg);
            direct.insert_hashes(&ha);
            direct.insert_hashes(&hb);
            prop_assert_eq!(merged.to_bytes(), direct.to_bytes());
        } else {
            // Still sparse: estimate is near-exact on the union.
            let exact: std::collections::HashSet<u64> =
                ha.iter().chain(hb.iter()).copied().collect();
            let est = merged.estimate();
            let n = exact.len() as f64;
            prop_assert!(
                n == 0.0 || (est / n - 1.0).abs() < 0.05,
                "sparse union estimate {} vs exact {}", est, n
            );
        }
    }
}
