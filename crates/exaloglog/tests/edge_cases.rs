//! Edge-of-the-envelope tests: extreme parameters, saturation, operating
//! range boundaries, and composition laws not covered by the main suites.

use ell_hash::SplitMix64;
use exaloglog::{EllConfig, ExaLogLog, MartingaleExaLogLog};

#[test]
fn minimal_precision_works() {
    // p = 2: four registers — the smallest sketch the paper permits.
    let mut s = ExaLogLog::with_params(2, 20, 2).unwrap();
    let mut rng = SplitMix64::new(1);
    for _ in 0..1000 {
        s.insert_hash(rng.next_u64());
    }
    let est = s.estimate();
    // σ = √(3.67/(28·4)) ≈ 18 %; just require the right ballpark.
    assert!((300.0..3000.0).contains(&est), "{est}");
}

#[test]
fn maximal_t_and_width() {
    // t = 6 (b = 2^(1/64)) with a 64-bit register: the widest layout.
    let cfg = EllConfig::new(6, 52, 4).unwrap();
    assert_eq!(cfg.register_width(), 64);
    let mut s = ExaLogLog::new(cfg);
    let mut rng = SplitMix64::new(2);
    for _ in 0..5000 {
        s.insert_hash(rng.next_u64());
    }
    let est = s.estimate();
    assert!((est / 5000.0 - 1.0).abs() < 0.6, "{est}");
    // Serialization handles the full-width registers.
    let back = ExaLogLog::from_bytes(&s.to_bytes()).unwrap();
    assert_eq!(back, s);
}

#[test]
fn d_zero_is_hyperminhash_like() {
    // ELL(t, 0): registers hold only the maximum (paper §2.5 relates this
    // to HyperMinHash). Everything must still work.
    let mut s = ExaLogLog::with_params(2, 0, 8).unwrap();
    let mut rng = SplitMix64::new(3);
    for _ in 0..20_000 {
        s.insert_hash(rng.next_u64());
    }
    let est = s.estimate();
    // MVP(2,0) ≈ 8.04 → σ ≈ 6.3 % at p = 8; allow 4σ.
    assert!((est / 20_000.0 - 1.0).abs() < 0.25, "{est}");
    let back = ExaLogLog::from_bytes(&s.to_bytes()).unwrap();
    assert_eq!(back, s);
}

#[test]
fn saturated_sketch_is_handled_gracefully() {
    // Force full saturation through apply_update: every (register, value)
    // pair observed. The ML estimate must be +∞, nothing may panic, and
    // the state must round-trip.
    let cfg = EllConfig::new(0, 2, 2).unwrap();
    let mut s = ExaLogLog::new(cfg);
    for i in 0..cfg.m() {
        for k in 1..=cfg.max_update_value() {
            s.apply_update(i, k);
        }
    }
    assert_eq!(s.estimate_ml_raw(), f64::INFINITY);
    assert_eq!(s.estimate(), f64::INFINITY);
    assert!((s.state_change_probability()).abs() < 1e-12);
    let back = ExaLogLog::from_bytes(&s.to_bytes()).unwrap();
    assert_eq!(back, s);
    // A saturated register no longer changes.
    assert!(!s.insert_hash(0));
    assert!(!s.insert_hash(u64::MAX));
}

#[test]
fn apply_update_equals_insert_hash() {
    // For every hash, insert_hash(h) must equal
    // apply_update(decompose_hash(h)).
    let cfg = EllConfig::optimal(6).unwrap();
    let mut via_hash = ExaLogLog::new(cfg);
    let mut via_update = ExaLogLog::new(cfg);
    let mut rng = SplitMix64::new(4);
    for _ in 0..10_000 {
        let h = rng.next_u64();
        via_hash.insert_hash(h);
        let (i, k) = via_update.decompose_hash(h);
        via_update.apply_update(i, k);
    }
    assert_eq!(via_hash, via_update);
}

#[test]
fn reduction_composes() {
    // reduce(d1,p1) ∘ reduce(d2,p2) == reduce(d2,p2) directly.
    let mut s = ExaLogLog::with_params(2, 24, 10).unwrap();
    let mut rng = SplitMix64::new(5);
    for _ in 0..30_000 {
        s.insert_hash(rng.next_u64());
    }
    let two_step = s.reduce(16, 8).unwrap().reduce(4, 5).unwrap();
    let one_step = s.reduce(4, 5).unwrap();
    assert_eq!(two_step, one_step);
    // Order of d- vs p-reduction does not matter either.
    let d_then_p = s.reduce(4, 10).unwrap().reduce(4, 5).unwrap();
    let p_then_d = s.reduce(24, 5).unwrap().reduce(4, 5).unwrap();
    assert_eq!(d_then_p, one_step);
    assert_eq!(p_then_d, one_step);
}

#[test]
fn martingale_estimate_counts_exactly_until_first_collision() {
    // While every update hits a fresh register cell, μ decreases exactly
    // as information accrues and the estimate equals n exactly.
    let mut s = MartingaleExaLogLog::with_params(2, 24, 14).unwrap();
    let mut rng = SplitMix64::new(6);
    let mut exact = 0u64;
    for _ in 0..200 {
        if s.insert_hash(rng.next_u64()) {
            exact += 1;
        }
    }
    // With m = 16384 registers, 200 random inserts virtually never
    // collide on (register, value): each changed the state.
    assert_eq!(exact, 200);
    assert!((s.estimate() - 200.0).abs() < 0.2, "{}", s.estimate());
}

#[test]
fn extreme_hash_values_decompose_correctly() {
    let cfg = EllConfig::new(2, 20, 8).unwrap();
    let s = ExaLogLog::new(cfg);
    for h in [0u64, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1] {
        let (i, k) = s.decompose_hash(h);
        assert!(i < cfg.m());
        assert!(k >= 1 && k <= cfg.max_update_value(), "h={h:#x}: k={k}");
    }
}

#[test]
fn estimate_at_every_fill_level_is_finite_and_monotoneish() {
    // Sweep fill levels from empty to heavily loaded; the estimate should
    // be finite and roughly track n throughout (no estimator handoff
    // artifacts — the single ML estimator covers the whole range).
    let mut s = ExaLogLog::with_params(2, 20, 6).unwrap();
    let mut rng = SplitMix64::new(7);
    let mut n = 0u64;
    let mut last_est = 0.0f64;
    for step in 0..20 {
        let target = 1u64 << step;
        while n < target {
            s.insert_hash(rng.next_u64());
            n += 1;
        }
        let est = s.estimate();
        assert!(est.is_finite() && est > 0.0, "n={n}: {est}");
        assert!(
            (est / n as f64 - 1.0).abs() < 0.7,
            "n={n}: estimate {est} wildly off"
        );
        assert!(
            est > last_est * 0.7,
            "estimate collapsed between fill levels: {last_est} → {est}"
        );
        last_est = est;
    }
}

#[test]
fn merge_of_saturated_with_empty() {
    let cfg = EllConfig::new(0, 2, 2).unwrap();
    let mut saturated = ExaLogLog::new(cfg);
    for i in 0..cfg.m() {
        for k in 1..=cfg.max_update_value() {
            saturated.apply_update(i, k);
        }
    }
    let empty = ExaLogLog::new(cfg);
    let mut merged = saturated.clone();
    merged.merge_from(&empty).unwrap();
    assert_eq!(merged, saturated);
    let mut merged2 = empty.clone();
    merged2.merge_from(&saturated).unwrap();
    assert_eq!(merged2, saturated);
}
