//! Property tests for the hardcoded fast paths of `exaloglog::specialized`:
//! for arbitrary hash streams and precisions, the specialized sketches
//! must be bit-for-bit state-equivalent to the generic implementation —
//! the invariant that makes the §5.3 "hardcode the parameters" speedup
//! a pure optimization.

use ell_hash::SplitMix64;
use exaloglog::{EllT1D9, EllT2D16, EllT2D20, EllT2D24, ExaLogLog};
use proptest::prelude::*;

fn hashes(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

macro_rules! equivalence_property {
    ($fwd:ident, $merge:ident, $ty:ty, $t:literal, $d:literal) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn $fwd(seed in any::<u64>(), n in 0usize..8000, p in 2u8..12) {
                let mut fast = <$ty>::new(p).unwrap();
                let mut dense = ExaLogLog::with_params($t, $d, p).unwrap();
                for &h in &hashes(seed, n) {
                    prop_assert_eq!(fast.insert_hash(h), dense.insert_hash(h));
                }
                prop_assert_eq!(fast.to_dense(), dense.clone());
                prop_assert_eq!(fast.estimate(), dense.estimate());
                prop_assert_eq!(<$ty>::from_dense(&dense).unwrap(), fast);
            }

            #[test]
            fn $merge(seed in any::<u64>(), na in 0usize..4000, nb in 0usize..4000, p in 2u8..10) {
                let sa = hashes(seed, na);
                let sb = hashes(seed ^ 0xA5A5_A5A5, nb);
                let mut fa = <$ty>::new(p).unwrap();
                let mut fb = <$ty>::new(p).unwrap();
                let mut da = ExaLogLog::with_params($t, $d, p).unwrap();
                let mut db = da.clone();
                for &h in &sa {
                    fa.insert_hash(h);
                    da.insert_hash(h);
                }
                for &h in &sb {
                    fb.insert_hash(h);
                    db.insert_hash(h);
                }
                fa.merge_from(&fb).unwrap();
                da.merge_from(&db).unwrap();
                prop_assert_eq!(fa.to_dense(), da);
            }
        }
    };
}

equivalence_property!(t2d20_equivalent, t2d20_merge, EllT2D20, 2, 20);
equivalence_property!(t2d24_equivalent, t2d24_merge, EllT2D24, 2, 24);
equivalence_property!(t2d16_equivalent, t2d16_merge, EllT2D16, 2, 16);
equivalence_property!(t1d9_equivalent, t1d9_merge, EllT1D9, 1, 9);
