//! Property tests for the fast-path register engine: the incremental ML
//! coefficient cache, the word-level merge scan, and the width-specialized
//! register storage must all be *pure optimizations* — bit-identical
//! serialized state and bit-identical estimates versus the reference
//! paths (sequential inserts, per-register merges, the Algorithm 3 scan,
//! generic shifted-window storage) for arbitrary operation sequences.
//!
//! The per-config coverage here is complemented by the debug assertion
//! inside `ExaLogLog::estimate`/`coefficients`, which re-checks
//! cache-vs-scan equality on every estimate throughout the whole test
//! suite (including the registry-driven `tests/trait_laws.rs` laws).

use ell_hash::SplitMix64;
use exaloglog::ml;
use exaloglog::{EllConfig, ExaLogLog};
use proptest::prelude::*;

fn hashes(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Every named configuration of the ELL family (the shapes the sketch
/// registry exposes) plus odd widths that exercise the generic storage
/// backend and the 64-bit extreme.
fn configs() -> Vec<EllConfig> {
    vec![
        EllConfig::hll(5).unwrap(),                // width 6, generic
        EllConfig::ehll(4).unwrap(),               // width 7, generic
        EllConfig::ull(6).unwrap(),                // width 8, u8 backend
        EllConfig::aligned16(5).unwrap(),          // width 16, u16 backend
        EllConfig::martingale_optimal(4).unwrap(), // width 24, u24 backend
        EllConfig::optimal(6).unwrap(),            // width 28, generic
        EllConfig::aligned32(4).unwrap(),          // width 32, u32 backend
        EllConfig::new(0, 7, 4).unwrap(),          // width 13, generic
        EllConfig::new(3, 13, 5).unwrap(),         // width 22, generic
        EllConfig::new(2, 56, 3).unwrap(),         // width 64, u64 backend
    ]
}

#[derive(Debug, Clone)]
enum Op {
    /// Batch-insert a pseudo-random stream.
    Insert { seed: u64, n: usize },
    /// Merge a freshly built sketch (word-level on the subject,
    /// per-register on the reference).
    Merge { seed: u64, n: usize },
    /// Reset to empty.
    Clear,
    /// Serialize and deserialize the subject in place.
    Roundtrip,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u64>(), 0usize..600).prop_map(|(seed, n)| Op::Insert { seed, n }),
        (any::<u64>(), 0usize..600).prop_map(|(seed, n)| Op::Merge { seed, n }),
        Just(Op::Clear),
        Just(Op::Roundtrip),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After any sequence of batched inserts, word-level merges, clears
    /// and serialization round-trips, the incrementally maintained
    /// coefficients equal a fresh Algorithm 3 scan, the ML estimate is
    /// bit-identical to the scan-based one, and the serialized state
    /// equals a reference sketch driven through the sequential insert /
    /// per-register merge paths.
    #[test]
    fn incremental_coefficients_match_scan(
        cfg_idx in 0usize..10,
        ops in prop::collection::vec(op_strategy(), 1..10)
    ) {
        let cfg = configs()[cfg_idx];
        let mut fast = ExaLogLog::new(cfg);
        let mut reference = ExaLogLog::new(cfg);
        for op in ops {
            match op {
                Op::Insert { seed, n } => {
                    let hs = hashes(seed, n);
                    fast.insert_hashes(&hs);
                    for &h in &hs {
                        reference.insert_hash(h);
                    }
                }
                Op::Merge { seed, n } => {
                    let mut other = ExaLogLog::new(cfg);
                    other.insert_hashes(&hashes(seed, n));
                    fast.merge_from(&other).unwrap();
                    reference.merge_from_per_register(&other).unwrap();
                }
                Op::Clear => {
                    fast.clear();
                    reference.clear();
                }
                Op::Roundtrip => {
                    fast = ExaLogLog::from_bytes(&fast.to_bytes()).unwrap();
                    // Deserialization rebuilds the cache eagerly: the
                    // restored sketch must estimate through the
                    // incremental path and still match the reference.
                    prop_assert!(fast.has_cached_coefficients());
                    prop_assert_eq!(fast.estimate().to_bits(), reference.estimate().to_bits());
                }
            }
            prop_assert!(fast.has_cached_coefficients());
            prop_assert_eq!(fast.coefficients(), fast.coefficients_scan());
            let scan_estimate =
                ml::ml_estimate_from_coefficients(&fast.coefficients_scan(), cfg.m() as f64);
            prop_assert_eq!(fast.estimate_ml_raw().to_bits(), scan_estimate.to_bits());
            prop_assert_eq!(fast.to_bytes(), reference.to_bytes());
            prop_assert_eq!(fast.estimate().to_bits(), reference.estimate().to_bits());
        }
    }

    /// The word-level merge must be bit-identical to both the
    /// per-register reference merge and direct recording of the combined
    /// stream, across all configurations (covering every storage backend
    /// and the straddling-register geometry of non-aligned widths).
    #[test]
    fn word_merge_equals_reference_merge(
        cfg_idx in 0usize..10,
        seed in any::<u64>(),
        na in 0usize..3000,
        nb in 0usize..3000,
    ) {
        let cfg = configs()[cfg_idx];
        let sa = hashes(seed, na);
        let sb = hashes(seed ^ 0x00C0_FFEE, nb);
        let mut a = ExaLogLog::new(cfg);
        let mut b = ExaLogLog::new(cfg);
        let mut direct = ExaLogLog::new(cfg);
        a.insert_hashes(&sa);
        b.insert_hashes(&sb);
        for &h in sa.iter().chain(sb.iter()) {
            direct.insert_hash(h);
        }
        let mut word_merged = a.clone();
        word_merged.merge_from(&b).unwrap();
        let mut per_register = a.clone();
        per_register.merge_from_per_register(&b).unwrap();
        prop_assert_eq!(word_merged.to_bytes(), per_register.to_bytes());
        prop_assert_eq!(word_merged.to_bytes(), direct.to_bytes());
        // Self-merge and empty-merge hit the all-equal / all-zero run
        // fast paths and must be no-ops.
        let mut self_merged = word_merged.clone();
        self_merged.merge_from(&word_merged.clone()).unwrap();
        prop_assert_eq!(&self_merged, &word_merged);
        self_merged.merge_from(&ExaLogLog::new(cfg)).unwrap();
        prop_assert_eq!(&self_merged, &word_merged);
        prop_assert_eq!(
            word_merged.estimate().to_bits(),
            per_register.estimate().to_bits()
        );
    }

    /// Pinning the register storage to the generic shifted-window path
    /// must not change a single bit of behavior: same insert results,
    /// same serialized state, same estimates.
    #[test]
    fn generic_storage_is_bit_identical(
        cfg_idx in 0usize..10,
        seed in any::<u64>(),
        n in 0usize..3000,
        nb in 0usize..1500,
    ) {
        let cfg = configs()[cfg_idx];
        let mut spec = ExaLogLog::new(cfg);
        let mut gen = ExaLogLog::new(cfg);
        gen.force_generic_storage();
        prop_assert_eq!(gen.storage_backend(), "generic");
        spec.insert_hashes(&hashes(seed, n));
        gen.insert_hashes(&hashes(seed, n));
        prop_assert_eq!(spec.to_bytes(), gen.to_bytes());
        let mut other = ExaLogLog::new(cfg);
        other.insert_hashes(&hashes(seed ^ 0xBEEF, nb));
        let mut other_gen = other.clone();
        other_gen.force_generic_storage();
        spec.merge_from(&other).unwrap();
        gen.merge_from(&other_gen).unwrap();
        prop_assert_eq!(spec.to_bytes(), gen.to_bytes());
        prop_assert_eq!(spec.estimate().to_bits(), gen.estimate().to_bits());
    }

    /// `extend_hashes` buffers through the unrolled batch path in 1024-hash
    /// blocks; it must stay bit-for-bit equivalent to sequential inserts,
    /// including around the block boundaries.
    #[test]
    fn extend_hashes_matches_sequential(
        cfg_idx in 0usize..10,
        seed in any::<u64>(),
        n in prop_oneof![0usize..64, 1000usize..1100, 2040usize..2060],
    ) {
        let cfg = configs()[cfg_idx];
        let hs = hashes(seed, n);
        let mut by_extend = ExaLogLog::new(cfg);
        by_extend.extend_hashes(hs.iter().copied());
        let mut by_loop = ExaLogLog::new(cfg);
        for &h in &hs {
            by_loop.insert_hash(h);
        }
        prop_assert_eq!(by_extend.to_bytes(), by_loop.to_bytes());
        prop_assert!(by_extend.has_cached_coefficients());
        prop_assert_eq!(by_extend.coefficients(), by_extend.coefficients_scan());
    }
}
