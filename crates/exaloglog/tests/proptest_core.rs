//! Property-based tests of the core register and estimation invariants.

use exaloglog::ml::{log_likelihood, ml_estimate_from_coefficients, MlCoefficients};
use exaloglog::pmf::{omega, rho_update};
use exaloglog::registers;
use exaloglog::{EllConfig, ExaLogLog};
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = EllConfig> {
    (0u8..=4, 0u8..=30, 2u8..=10).prop_map(|(t, d, p)| EllConfig::new(t, d, p).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Register update is monotone (values only grow), idempotent, and
    /// keeps the state valid.
    #[test]
    fn register_update_laws(
        cfg in config_strategy(),
        ks in prop::collection::vec(1u64..200, 1..40),
    ) {
        let kmax = cfg.max_update_value();
        let d = cfg.d();
        let mut r = 0u64;
        for &k in &ks {
            let k = (k - 1) % kmax + 1;
            let r2 = registers::update(r, k, d);
            prop_assert!(r2 >= r, "register value regressed");
            prop_assert!(registers::is_valid(&cfg, r2), "invalid state {r2:#x}");
            prop_assert_eq!(registers::update(r2, k, d), r2, "not idempotent");
            r = r2;
        }
        prop_assert!(r >> d <= kmax);
    }

    /// Merge is the least upper bound: merge(a,b) dominates both inputs
    /// and equals the union-recorded register (semilattice law).
    #[test]
    fn register_merge_is_lub(
        cfg in config_strategy(),
        ka in prop::collection::vec(1u64..200, 0..20),
        kb in prop::collection::vec(1u64..200, 0..20),
    ) {
        let kmax = cfg.max_update_value();
        let d = cfg.d();
        let norm = |k: u64| (k - 1) % kmax + 1;
        let ra = ka.iter().fold(0u64, |r, &k| registers::update(r, norm(k), d));
        let rb = kb.iter().fold(0u64, |r, &k| registers::update(r, norm(k), d));
        let merged = registers::merge(ra, rb, d);
        let union = ka.iter().chain(kb.iter())
            .fold(0u64, |r, &k| registers::update(r, norm(k), d));
        prop_assert_eq!(merged, union);
        // Dominance: merging back changes nothing.
        prop_assert_eq!(registers::merge(merged, ra, d), merged);
        prop_assert_eq!(registers::merge(merged, rb, d), merged);
        prop_assert!(registers::is_valid(&cfg, merged));
    }

    /// h(r) (the martingale change probability) is the exact sum of the
    /// unseen update-value probabilities that could still change r.
    #[test]
    fn change_probability_is_unseen_mass(
        cfg in config_strategy(),
        ks in prop::collection::vec(1u64..200, 0..15),
    ) {
        let kmax = cfg.max_update_value();
        let d = cfg.d();
        let norm = |k: u64| (k - 1) % kmax + 1;
        let r = ks.iter().fold(0u64, |r, &k| registers::update(r, norm(k), d));
        let h = registers::change_probability(&cfg, r);
        // Brute force: sum ρ(k) over every k whose insertion would change r.
        let mut brute = 0.0;
        for k in 1..=kmax {
            if registers::update(r, k, d) != r {
                brute += rho_update(&cfg, k);
            }
        }
        brute /= cfg.m() as f64;
        prop_assert!((h - brute).abs() < 1e-12, "h = {h}, brute = {brute}");
    }

    /// ω(u) equals the brute-force tail sum for every u.
    #[test]
    fn omega_matches_brute_force(cfg in config_strategy()) {
        let kmax = cfg.max_update_value();
        let mut tail = 0.0;
        for u in (0..kmax).rev() {
            tail += rho_update(&cfg, u + 1);
            let got = omega(&cfg, u);
            prop_assert!((got - tail).abs() <= 1e-12 * tail.max(1e-300), "u={u}");
        }
    }

    /// The Newton solver lands on the likelihood maximizer for arbitrary
    /// well-formed coefficients.
    #[test]
    fn newton_finds_the_maximizer(
        alpha_frac in 0.01f64..0.99,
        levels in prop::collection::btree_map(1usize..50, 1u64..200, 1..6),
        m_log in 2u32..12,
    ) {
        let m = f64::from(1u32 << m_log);
        let mut beta = [0u64; 65];
        for (&u, &b) in &levels {
            beta[u] = b;
        }
        let coeffs = MlCoefficients {
            alpha_times_2_64: (alpha_frac * m * 2f64.powi(64)) as u128,
            beta,
        };
        let n_hat = ml_estimate_from_coefficients(&coeffs, m);
        prop_assert!(n_hat.is_finite() && n_hat > 0.0);
        let ll = log_likelihood(&coeffs, m, n_hat);
        for factor in [0.9, 0.99, 1.01, 1.1] {
            let other = log_likelihood(&coeffs, m, n_hat * factor);
            prop_assert!(
                other <= ll + 1e-7 * ll.abs(),
                "LL({}) = {other} > LL(n̂ = {n_hat}) = {ll}",
                n_hat * factor
            );
        }
    }

    /// Entropy-coded serialization round-trips losslessly for arbitrary
    /// configurations and fill levels (this also hammers the arithmetic
    /// coder's carry handling with adversarial bit patterns).
    #[test]
    fn compressed_roundtrip(
        cfg in config_strategy(),
        hashes in prop::collection::vec(any::<u64>(), 0..400),
    ) {
        let mut s = ExaLogLog::new(cfg);
        for &h in &hashes {
            s.insert_hash(h);
        }
        let packed = exaloglog::compress::compress(&s);
        let restored = exaloglog::compress::decompress(&packed).unwrap();
        prop_assert_eq!(restored, s);
    }

    /// Sketch-level: the estimate is invariant under serialization and
    /// the state-change probability never increases with insertions.
    #[test]
    fn sketch_invariants(
        cfg in config_strategy(),
        hashes in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut s = ExaLogLog::new(cfg);
        let mut mu_prev = s.state_change_probability();
        for &h in &hashes {
            let changed = s.insert_hash(h);
            let mu = s.state_change_probability();
            if changed {
                prop_assert!(mu < mu_prev + 1e-12, "μ must decrease on change");
            } else {
                prop_assert!((mu - mu_prev).abs() < 1e-12, "μ must not move on no-op");
            }
            mu_prev = mu;
        }
        let restored = ExaLogLog::from_bytes(&s.to_bytes()).unwrap();
        prop_assert_eq!(restored.estimate().to_bits(), s.estimate().to_bits());
    }
}
