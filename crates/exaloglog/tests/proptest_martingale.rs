//! Martingale exactness under batching.
//!
//! The martingale estimator is path-dependent: every state change adds
//! 1/μ with the μ *left behind by all earlier changes*, so a batched
//! insert path that coalesced two changes to the same register (applying
//! only the net register transition) or reordered changes across
//! registers would silently bias the estimate even though the final
//! sketch state were identical. These properties pin the batched path to
//! the sequential reference bit-for-bit — estimator value, state-change
//! probability μ, and underlying register state.

use ell_hash::SplitMix64;
use exaloglog::{EllConfig, MartingaleExaLogLog};
use proptest::prelude::*;

/// A spread of configurations (≥ 5, covering byte-aligned and generic
/// register widths, several t and d values, and the martingale-optimal
/// preset the paper singles out).
fn configs() -> Vec<EllConfig> {
    vec![
        EllConfig::martingale_optimal(5).unwrap(), // ELL(2,16), 24-bit regs
        EllConfig::optimal(4).unwrap(),            // ELL(2,20), 28-bit regs
        EllConfig::hll(6).unwrap(),                // ELL(0,0), classic HLL
        EllConfig::ull(5).unwrap(),                // ELL(2,0), 8-bit regs
        EllConfig::aligned32(4).unwrap(),          // ELL(2,24), 32-bit regs
        EllConfig::new(1, 9, 6).unwrap(),          // odd width 16
        EllConfig::new(3, 13, 4).unwrap(),         // generic width 22
    ]
}

/// Duplicate-heavy hash streams: draws from a small id universe so the
/// batch path sees plenty of repeated registers and no-op updates — the
/// shapes where illegal coalescing would actually diverge.
fn dup_heavy_hashes(seed: u64, n: usize, universe: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| ell_hash::mix64(rng.next_u64() % universe.max(1)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Feeding a stream through `insert_hashes` (in arbitrary chunk
    /// sizes) must leave the estimator value, μ, and the sketch state
    /// bit-identical to one-by-one insertion of the same stream.
    #[test]
    fn batched_estimator_is_bit_identical_to_sequential(
        cfg_idx in 0usize..7,
        seed in any::<u64>(),
        n in 0usize..3000,
        universe in 1u64..2000,
        chunk in 1usize..300,
    ) {
        let cfg = configs()[cfg_idx];
        let hashes = dup_heavy_hashes(seed, n, universe);
        let mut seq = MartingaleExaLogLog::new(cfg);
        for &h in &hashes {
            seq.insert_hash(h);
        }
        let mut bat = MartingaleExaLogLog::new(cfg);
        for block in hashes.chunks(chunk) {
            bat.insert_hashes(block);
        }
        prop_assert_eq!(
            bat.estimate().to_bits(),
            seq.estimate().to_bits(),
            "estimator diverged: batched {} vs sequential {}",
            bat.estimate(),
            seq.estimate()
        );
        prop_assert_eq!(
            bat.state_change_probability().to_bits(),
            seq.state_change_probability().to_bits(),
            "μ diverged: batched {} vs sequential {}",
            bat.state_change_probability(),
            seq.state_change_probability()
        );
        prop_assert_eq!(bat.sketch().to_bytes(), seq.sketch().to_bytes());
    }

    /// Lane-boundary cases: duplicate bursts positioned so that a state
    /// change and its duplicate land in the same unrolled block. The
    /// estimator must count the change exactly once.
    #[test]
    fn duplicate_bursts_inside_one_block_count_once(
        cfg_idx in 0usize..7,
        seed in any::<u64>(),
        burst in 2usize..16,
    ) {
        let cfg = configs()[cfg_idx];
        let mut rng = SplitMix64::new(seed);
        // 32 distinct hashes, each repeated `burst` times back-to-back:
        // every unrolled block contains several identical lanes.
        let mut hashes = Vec::new();
        for _ in 0..32 {
            let h = rng.next_u64();
            hashes.extend(std::iter::repeat_n(h, burst));
        }
        let mut seq = MartingaleExaLogLog::new(cfg);
        for &h in &hashes {
            seq.insert_hash(h);
        }
        let mut bat = MartingaleExaLogLog::new(cfg);
        bat.insert_hashes(&hashes);
        prop_assert_eq!(bat.estimate().to_bits(), seq.estimate().to_bits());
        prop_assert_eq!(
            bat.state_change_probability().to_bits(),
            seq.state_change_probability().to_bits()
        );
    }
}
