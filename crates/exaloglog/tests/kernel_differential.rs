//! Differential tests for the merge scan kernels: `merge_from` under
//! every kernel the hardware supports must produce a serialized sketch
//! bit-identical to the reference `merge_from_per_register` path, across
//! register widths from 6 to 64 bits (aligned and straddling) and
//! adversarial shapes — empty sketches, identical sketches, disjoint and
//! overlapping streams, self-merges. A separate unit test pins the
//! `ELL_KERNEL` override so the CI kernel matrix provably exercises each
//! forced kernel.

use ell_hash::SplitMix64;
use exaloglog::kernels::{self, Kernel};
use exaloglog::{EllConfig, ExaLogLog};
use proptest::prelude::*;

fn hashes(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Configurations covering every storage backend: lane-extraction widths
/// (8, 16, 32, 64), straddling widths (6, 7, 13, 22, 28), and the u24
/// byte-aligned width.
fn configs() -> Vec<EllConfig> {
    vec![
        EllConfig::hll(5).unwrap(),                // width 6
        EllConfig::ehll(4).unwrap(),               // width 7
        EllConfig::ull(6).unwrap(),                // width 8
        EllConfig::aligned16(5).unwrap(),          // width 16
        EllConfig::martingale_optimal(4).unwrap(), // width 24
        EllConfig::optimal(6).unwrap(),            // width 28
        EllConfig::aligned32(4).unwrap(),          // width 32
        EllConfig::new(0, 7, 4).unwrap(),          // width 13
        EllConfig::new(2, 56, 3).unwrap(),         // width 64
    ]
}

fn sketch_of(cfg: EllConfig, seed: u64, n: usize) -> ExaLogLog {
    let mut s = ExaLogLog::new(cfg);
    s.insert_hashes(&hashes(seed, n));
    s
}

/// Merges `other` into a clone of `base` under `kernel` and checks it
/// against the per-register reference, bit for bit.
fn assert_merge_identical(base: &ExaLogLog, other: &ExaLogLog, kernel: Kernel) {
    let mut fast = base.clone();
    fast.merge_from_with_kernel(other, kernel).unwrap();
    let mut reference = base.clone();
    reference.merge_from_per_register(other).unwrap();
    assert_eq!(
        fast.to_bytes(),
        reference.to_bytes(),
        "kernel {} diverged from per-register merge",
        kernel.name()
    );
    assert_eq!(fast.estimate().to_bits(), reference.estimate().to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random overlapping streams: every kernel's word merge equals the
    /// per-register reference on every configuration.
    #[test]
    fn merge_matches_reference_under_all_kernels(
        cfg_idx in 0usize..9,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        n_a in 0usize..900,
        n_b in 0usize..900,
        shared in 0usize..300
    ) {
        let cfg = configs()[cfg_idx];
        let mut a = sketch_of(cfg, seed_a, n_a);
        let mut b = sketch_of(cfg, seed_b, n_b);
        // Shared suffix so overlap (equal-word runs) actually occurs.
        let common = hashes(seed_a ^ 0x9e37_79b9, shared);
        a.insert_hashes(&common);
        b.insert_hashes(&common);
        for kernel in kernels::available() {
            assert_merge_identical(&a, &b, kernel);
            assert_merge_identical(&b, &a, kernel);
        }
    }
}

/// Deterministic adversarial shapes for every config and kernel.
#[test]
fn adversarial_merge_shapes() {
    for cfg in configs() {
        let empty = ExaLogLog::new(cfg);
        let dense = sketch_of(cfg, 7, 4000);
        let sparse = sketch_of(cfg, 11, 24);
        let twin = dense.clone();
        for kernel in kernels::available() {
            // empty ← X, X ← empty, X ← X (all-equal words), dense ← sparse
            // (zero-incoming runs), sparse ← dense, and near-identical
            // sketches differing in a handful of words.
            for (base, other) in [
                (&empty, &dense),
                (&dense, &empty),
                (&dense, &twin),
                (&dense, &sparse),
                (&sparse, &dense),
                (&empty, &empty),
            ] {
                assert_merge_identical(base, other, kernel);
            }
            let mut nearly = dense.clone();
            nearly.insert_hashes(&hashes(13, 12));
            assert_merge_identical(&dense, &nearly, kernel);
            assert_merge_identical(&nearly, &dense, kernel);
        }
    }
}

/// `merge_from` (active-kernel path) also matches the reference — this is
/// what the CI kernel matrix runs under each forced `ELL_KERNEL`, and the
/// active kernel must honour the override so those runs mean something.
#[test]
fn forced_kernel_is_honoured_and_identical() {
    let active = kernels::active();
    if let Ok(name) = std::env::var("ELL_KERNEL") {
        if let Some(requested) = Kernel::parse(&name) {
            assert_eq!(
                active,
                requested.normalize(),
                "ELL_KERNEL={name} must pin the active kernel"
            );
        }
    }
    for cfg in configs() {
        let dense = sketch_of(cfg, 3, 3000);
        let other = sketch_of(cfg, 5, 500);
        let mut fast = dense.clone();
        fast.merge_from(&other).unwrap();
        let mut reference = dense.clone();
        reference.merge_from_per_register(&other).unwrap();
        assert_eq!(
            fast.to_bytes(),
            reference.to_bytes(),
            "active kernel {} diverged",
            active.name()
        );
    }
}
