//! End-to-end tests of the CLI workflows through the library functions
//! (count → save → merge → reduce → compress → inspect, plus the sparse
//! token pipeline and set-relation queries), using temp files.

use ell_tools::{
    collect_tokens, count_lines, count_lines_with_algo, inspect, load_any, load_sketch,
    merge_files, relate, save_compressed, save_sketch, save_tokens, SketchFile, ToolError,
};
use exaloglog::EllConfig;
use std::io::Cursor;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ell_tools_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn lines(range: std::ops::Range<u32>) -> String {
    range.map(|i| format!("user-{i}\n")).collect()
}

#[test]
fn count_save_load_roundtrip() {
    let dir = TempDir::new("roundtrip");
    let cfg = EllConfig::new(2, 20, 10).unwrap();
    let sketch = count_lines(Cursor::new(lines(0..5000)), cfg).unwrap();
    let path = dir.path("a.ell");
    save_sketch(&sketch, &path).unwrap();
    let loaded = load_sketch(&path).unwrap();
    assert_eq!(loaded, sketch);
    assert!((loaded.estimate() / 5000.0 - 1.0).abs() < 0.1);
}

#[test]
fn merge_workflow_counts_union() {
    let dir = TempDir::new("merge");
    let cfg = EllConfig::new(2, 20, 10).unwrap();
    // Three shards with overlap: 0..4000, 2000..6000, 4000..9000.
    let shards = [lines(0..4000), lines(2000..6000), lines(4000..9000)];
    let mut paths = Vec::new();
    for (i, content) in shards.iter().enumerate() {
        let sketch = count_lines(Cursor::new(content.clone()), cfg).unwrap();
        let path = dir.path(&format!("shard{i}.ell"));
        save_sketch(&sketch, &path).unwrap();
        paths.push(path);
    }
    let refs: Vec<&std::path::Path> = paths.iter().map(PathBuf::as_path).collect();
    let merged = merge_files(&refs).unwrap();
    assert!(
        (merged.estimate() / 9000.0 - 1.0).abs() < 0.1,
        "union estimate {}",
        merged.estimate()
    );
}

#[test]
fn merge_mixed_precision_files() {
    let dir = TempDir::new("mixed");
    let a = count_lines(
        Cursor::new(lines(0..3000)),
        EllConfig::new(2, 20, 11).unwrap(),
    )
    .unwrap();
    let b = count_lines(
        Cursor::new(lines(1000..4000)),
        EllConfig::new(2, 16, 9).unwrap(),
    )
    .unwrap();
    let pa = dir.path("a.ell");
    let pb = dir.path("b.ell");
    save_sketch(&a, &pa).unwrap();
    save_sketch(&b, &pb).unwrap();
    let merged = merge_files(&[&pa, &pb]).unwrap();
    // Result at the common parameters (t=2, d=16, p=9).
    assert_eq!(merged.config(), &EllConfig::new(2, 16, 9).unwrap());
    assert!((merged.estimate() / 4000.0 - 1.0).abs() < 0.15);
}

#[test]
fn compressed_files_auto_detected() {
    let dir = TempDir::new("compressed");
    let cfg = EllConfig::new(2, 24, 10).unwrap();
    let sketch = count_lines(Cursor::new(lines(0..50_000)), cfg).unwrap();
    let plain = dir.path("s.ell");
    let packed = dir.path("s.ellz");
    save_sketch(&sketch, &plain).unwrap();
    save_compressed(&sketch, &packed).unwrap();
    // The compressed file must be smaller and load back identically.
    let plain_len = std::fs::metadata(&plain).unwrap().len();
    let packed_len = std::fs::metadata(&packed).unwrap().len();
    assert!(packed_len < plain_len, "{packed_len} >= {plain_len}");
    assert_eq!(load_sketch(&packed).unwrap(), sketch);
    // Compressed files merge like plain ones (auto-detection).
    let merged = merge_files(&[plain.as_path(), packed.as_path()]).unwrap();
    assert_eq!(merged, sketch);
}

#[test]
fn inspect_snapshot() {
    let cfg = EllConfig::new(2, 20, 8).unwrap();
    let sketch = count_lines(Cursor::new(lines(0..10_000)), cfg).unwrap();
    let report = inspect(&sketch);
    assert!(report.contains("ELL(t=2, d=20, p=8)"));
    assert!(report.contains("256 × 28 bits = 896 bytes"));
    // All registers should be occupied at n = 10^4 ≫ m = 256.
    assert!(report.contains("(100.0 %)"), "{report}");
}

#[test]
fn corrupted_file_is_rejected() {
    let dir = TempDir::new("corrupt");
    let path = dir.path("bad.ell");
    std::fs::write(&path, b"not a sketch at all").unwrap();
    assert!(load_sketch(&path).is_err());
    assert!(load_any(&path).is_err());
}

#[test]
fn token_pipeline_roundtrip() {
    let dir = TempDir::new("tokens");
    let tokens = collect_tokens(Cursor::new(lines(0..2000)), 26).unwrap();
    assert!((tokens.estimate() / 2000.0 - 1.0).abs() < 0.01);
    let path = dir.path("t.ellt");
    save_tokens(&tokens, &path).unwrap();
    match load_any(&path).unwrap() {
        SketchFile::Tokens(loaded) => {
            assert_eq!(loaded, tokens);
            assert!((loaded.estimate() - tokens.estimate()).abs() < 1e-9);
        }
        SketchFile::Dense(_) => panic!("ELLT file detected as dense"),
    }
    // Dense files flow through the same loader.
    let cfg = EllConfig::new(2, 20, 8).unwrap();
    let sketch = count_lines(Cursor::new(lines(0..2000)), cfg).unwrap();
    let dense_path = dir.path("d.ell");
    save_sketch(&sketch, &dense_path).unwrap();
    match load_any(&dense_path).unwrap() {
        SketchFile::Dense(loaded) => assert_eq!(loaded, sketch),
        SketchFile::Tokens(_) => panic!("ELL1 file detected as tokens"),
    }
}

#[test]
fn count_with_named_algorithms() {
    // The trait-dispatched counting path must work for the ELL family and
    // every baseline, at matching accuracy.
    for algo in ["ell", "ell-t2d20", "ull", "hll6", "pcsa"] {
        let sketch = count_lines_with_algo(Cursor::new(lines(0..5000)), algo, 11).unwrap();
        let est = sketch.estimate();
        assert!(
            (est / 5000.0 - 1.0).abs() < 0.1,
            "{algo}: estimate {est} too far from 5000"
        );
    }
}

#[test]
fn count_with_unknown_algorithm_is_an_error() {
    match count_lines_with_algo(Cursor::new(lines(0..10)), "bloom-filter", 11) {
        Err(ToolError::Algo(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("bloom-filter"), "{msg}");
            assert!(msg.contains("ull"), "should list known names: {msg}");
        }
        Err(other) => panic!("expected ToolError::Algo, got {other:?}"),
        Ok(sketch) => panic!("unknown algorithm built {}", sketch.name()),
    }
}

/// Runs the real `ell` binary with the given args and stdin, returning
/// (exit success, stdout, stderr).
fn run_cli(args: &[&str], stdin: &str) -> (bool, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ell"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ell binary");
    // Ignore write errors: a child that rejects its arguments exits
    // before reading stdin, which surfaces here as a broken pipe.
    let _ = child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("wait for ell binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_binary_count_algo_workflows() {
    let input = lines(0..3000);
    // ExaLogLog through the facade.
    let (ok, stdout, _) = run_cli(&["count", "--algo", "ell", "--p", "11"], &input);
    assert!(ok);
    let est: f64 = stdout.trim().parse().expect("numeric estimate");
    assert!((est / 3000.0 - 1.0).abs() < 0.1, "estimate {est}");
    // A baseline through the same interface.
    let (ok, stdout, _) = run_cli(&["count", "--algo", "ull", "--p", "11"], &input);
    assert!(ok);
    let est: f64 = stdout.trim().parse().expect("numeric estimate");
    assert!((est / 3000.0 - 1.0).abs() < 0.1, "ULL estimate {est}");
    // Unknown algorithm: non-zero exit, the name and the alternatives on
    // stderr.
    let (ok, _, stderr) = run_cli(&["count", "--algo", "nope"], "a\nb\n");
    assert!(!ok, "unknown algorithm must fail");
    assert!(stderr.contains("nope"), "{stderr}");
    assert!(stderr.contains("ull"), "should list known names: {stderr}");
    // --algo with --out is a usage error (sketch files are ExaLogLog).
    let (ok, _, stderr) = run_cli(&["count", "--algo", "ull", "--out", "/tmp/x.ell"], "a\n");
    assert!(!ok);
    assert!(stderr.contains("usage error"), "{stderr}");
}

#[test]
fn similarity_workflow() {
    let cfg = EllConfig::new(2, 20, 11).unwrap();
    // A = 0..6000, B = 3000..9000: |A∩B| = 3000, |A∪B| = 9000, J = 1/3.
    let a = count_lines(Cursor::new(lines(0..6000)), cfg).unwrap();
    let b = count_lines(Cursor::new(lines(3000..9000)), cfg).unwrap();
    let rel = relate(&a, &b).unwrap();
    assert!((rel.a / 6000.0 - 1.0).abs() < 0.06);
    assert!((rel.b / 6000.0 - 1.0).abs() < 0.06);
    assert!((rel.union / 9000.0 - 1.0).abs() < 0.06);
    assert!(
        (rel.jaccard - 1.0 / 3.0).abs() < 0.08,
        "J = {}",
        rel.jaccard
    );
    // Self-similarity is exactly 1 (identical sketches merge to themselves).
    let self_rel = relate(&a, &a).unwrap();
    assert!((self_rel.jaccard - 1.0).abs() < 1e-9);
}
