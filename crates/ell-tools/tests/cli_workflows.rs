//! End-to-end tests of the CLI workflows through the library functions
//! (count → save → merge → reduce → compress → inspect, plus the sparse
//! token pipeline and set-relation queries), using temp files.

use ell_store::EllStore;
use ell_tools::{
    collect_tokens, count_lines, count_lines_with_algo, count_sources, export_store, import_store,
    inspect, load_any, load_sketch, load_store, load_windowed, merge_files, relate,
    save_compressed, save_sketch, save_store, save_tokens, save_windowed, store_ingest,
    windowed_ingest, SketchFile, ToolError,
};
use exaloglog::EllConfig;
use std::io::Cursor;
use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Stdio};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ell_tools_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn lines(range: std::ops::Range<u32>) -> String {
    range.map(|i| format!("user-{i}\n")).collect()
}

#[test]
fn count_save_load_roundtrip() {
    let dir = TempDir::new("roundtrip");
    let cfg = EllConfig::new(2, 20, 10).unwrap();
    let sketch = count_lines(Cursor::new(lines(0..5000)), cfg).unwrap();
    let path = dir.path("a.ell");
    save_sketch(&sketch, &path).unwrap();
    let loaded = load_sketch(&path).unwrap();
    assert_eq!(loaded, sketch);
    assert!((loaded.estimate() / 5000.0 - 1.0).abs() < 0.1);
}

#[test]
fn merge_workflow_counts_union() {
    let dir = TempDir::new("merge");
    let cfg = EllConfig::new(2, 20, 10).unwrap();
    // Three shards with overlap: 0..4000, 2000..6000, 4000..9000.
    let shards = [lines(0..4000), lines(2000..6000), lines(4000..9000)];
    let mut paths = Vec::new();
    for (i, content) in shards.iter().enumerate() {
        let sketch = count_lines(Cursor::new(content.clone()), cfg).unwrap();
        let path = dir.path(&format!("shard{i}.ell"));
        save_sketch(&sketch, &path).unwrap();
        paths.push(path);
    }
    let refs: Vec<&std::path::Path> = paths.iter().map(PathBuf::as_path).collect();
    let merged = merge_files(&refs).unwrap();
    assert!(
        (merged.estimate() / 9000.0 - 1.0).abs() < 0.1,
        "union estimate {}",
        merged.estimate()
    );
}

#[test]
fn merge_mixed_precision_files() {
    let dir = TempDir::new("mixed");
    let a = count_lines(
        Cursor::new(lines(0..3000)),
        EllConfig::new(2, 20, 11).unwrap(),
    )
    .unwrap();
    let b = count_lines(
        Cursor::new(lines(1000..4000)),
        EllConfig::new(2, 16, 9).unwrap(),
    )
    .unwrap();
    let pa = dir.path("a.ell");
    let pb = dir.path("b.ell");
    save_sketch(&a, &pa).unwrap();
    save_sketch(&b, &pb).unwrap();
    let merged = merge_files(&[&pa, &pb]).unwrap();
    // Result at the common parameters (t=2, d=16, p=9).
    assert_eq!(merged.config(), &EllConfig::new(2, 16, 9).unwrap());
    assert!((merged.estimate() / 4000.0 - 1.0).abs() < 0.15);
}

#[test]
fn compressed_files_auto_detected() {
    let dir = TempDir::new("compressed");
    let cfg = EllConfig::new(2, 24, 10).unwrap();
    let sketch = count_lines(Cursor::new(lines(0..50_000)), cfg).unwrap();
    let plain = dir.path("s.ell");
    let packed = dir.path("s.ellz");
    save_sketch(&sketch, &plain).unwrap();
    save_compressed(&sketch, &packed).unwrap();
    // The compressed file must be smaller and load back identically.
    let plain_len = std::fs::metadata(&plain).unwrap().len();
    let packed_len = std::fs::metadata(&packed).unwrap().len();
    assert!(packed_len < plain_len, "{packed_len} >= {plain_len}");
    assert_eq!(load_sketch(&packed).unwrap(), sketch);
    // Compressed files merge like plain ones (auto-detection).
    let merged = merge_files(&[plain.as_path(), packed.as_path()]).unwrap();
    assert_eq!(merged, sketch);
}

#[test]
fn inspect_snapshot() {
    let cfg = EllConfig::new(2, 20, 8).unwrap();
    let sketch = count_lines(Cursor::new(lines(0..10_000)), cfg).unwrap();
    let report = inspect(&sketch);
    assert!(report.contains("ELL(t=2, d=20, p=8)"));
    assert!(report.contains("256 × 28 bits = 896 bytes"));
    // All registers should be occupied at n = 10^4 ≫ m = 256.
    assert!(report.contains("(100.0 %)"), "{report}");
}

#[test]
fn corrupted_file_is_rejected() {
    let dir = TempDir::new("corrupt");
    let path = dir.path("bad.ell");
    std::fs::write(&path, b"not a sketch at all").unwrap();
    assert!(load_sketch(&path).is_err());
    assert!(load_any(&path).is_err());
}

#[test]
fn token_pipeline_roundtrip() {
    let dir = TempDir::new("tokens");
    let tokens = collect_tokens(Cursor::new(lines(0..2000)), 26).unwrap();
    assert!((tokens.estimate() / 2000.0 - 1.0).abs() < 0.01);
    let path = dir.path("t.ellt");
    save_tokens(&tokens, &path).unwrap();
    match load_any(&path).unwrap() {
        SketchFile::Tokens(loaded) => {
            assert_eq!(loaded, tokens);
            assert!((loaded.estimate() - tokens.estimate()).abs() < 1e-9);
        }
        other => panic!("ELLT file misdetected as {other:?}"),
    }
    // Dense files flow through the same loader.
    let cfg = EllConfig::new(2, 20, 8).unwrap();
    let sketch = count_lines(Cursor::new(lines(0..2000)), cfg).unwrap();
    let dense_path = dir.path("d.ell");
    save_sketch(&sketch, &dense_path).unwrap();
    match load_any(&dense_path).unwrap() {
        SketchFile::Dense(loaded) => assert_eq!(loaded, sketch),
        other => panic!("ELL1 file misdetected as {other:?}"),
    }
    // Adaptive (ELLS) files are detected too.
    let mut adaptive =
        exaloglog::AdaptiveExaLogLog::new(EllConfig::new(2, 20, 10).unwrap()).unwrap();
    adaptive.insert_hash(42);
    let adaptive_path = dir.path("a.ells");
    std::fs::write(&adaptive_path, adaptive.to_bytes()).unwrap();
    match load_any(&adaptive_path).unwrap() {
        SketchFile::Adaptive(loaded) => assert_eq!(loaded, adaptive),
        other => panic!("ELLS file misdetected as {other:?}"),
    }
}

#[test]
fn count_with_named_algorithms() {
    // The trait-dispatched counting path must work for the ELL family and
    // every baseline, at matching accuracy.
    for algo in ["ell", "ell-t2d20", "ull", "hll6", "pcsa"] {
        let sketch = count_lines_with_algo(Cursor::new(lines(0..5000)), algo, 11).unwrap();
        let est = sketch.estimate();
        assert!(
            (est / 5000.0 - 1.0).abs() < 0.1,
            "{algo}: estimate {est} too far from 5000"
        );
    }
}

#[test]
fn count_with_unknown_algorithm_is_an_error() {
    match count_lines_with_algo(Cursor::new(lines(0..10)), "bloom-filter", 11) {
        Err(ToolError::Algo(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("bloom-filter"), "{msg}");
            assert!(msg.contains("ull"), "should list known names: {msg}");
        }
        Err(other) => panic!("expected ToolError::Algo, got {other:?}"),
        Ok(sketch) => panic!("unknown algorithm built {}", sketch.name()),
    }
}

/// Runs the real `ell` binary with the given args and stdin, returning
/// (exit success, stdout, stderr).
fn run_cli(args: &[&str], stdin: &str) -> (bool, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ell"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ell binary");
    // Ignore write errors: a child that rejects its arguments exits
    // before reading stdin, which surfaces here as a broken pipe.
    let _ = child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("wait for ell binary");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_binary_count_algo_workflows() {
    let input = lines(0..3000);
    // ExaLogLog through the facade.
    let (ok, stdout, _) = run_cli(&["count", "--algo", "ell", "--p", "11"], &input);
    assert!(ok);
    let est: f64 = stdout.trim().parse().expect("numeric estimate");
    assert!((est / 3000.0 - 1.0).abs() < 0.1, "estimate {est}");
    // A baseline through the same interface.
    let (ok, stdout, _) = run_cli(&["count", "--algo", "ull", "--p", "11"], &input);
    assert!(ok);
    let est: f64 = stdout.trim().parse().expect("numeric estimate");
    assert!((est / 3000.0 - 1.0).abs() < 0.1, "ULL estimate {est}");
    // Unknown algorithm: non-zero exit, the name and the alternatives on
    // stderr.
    let (ok, _, stderr) = run_cli(&["count", "--algo", "nope"], "a\nb\n");
    assert!(!ok, "unknown algorithm must fail");
    assert!(stderr.contains("nope"), "{stderr}");
    assert!(stderr.contains("ull"), "should list known names: {stderr}");
    // --algo with --out is a usage error (sketch files are ExaLogLog).
    let (ok, _, stderr) = run_cli(&["count", "--algo", "ull", "--out", "/tmp/x.ell"], "a\n");
    assert!(!ok);
    assert!(stderr.contains("usage error"), "{stderr}");
}

#[test]
fn count_multiple_sources_counts_the_union() {
    // Two overlapping ranges through the multi-source path equal one
    // combined count.
    let inputs: Vec<Box<dyn std::io::BufRead>> = vec![
        Box::new(Cursor::new(lines(0..4000))),
        Box::new(Cursor::new(lines(2000..6000))),
    ];
    let cfg = EllConfig::new(2, 20, 11).unwrap();
    let sketch = count_sources(inputs, cfg).unwrap();
    assert!(
        (sketch.estimate() / 6000.0 - 1.0).abs() < 0.06,
        "union estimate {}",
        sketch.estimate()
    );
    // Bit-for-bit identical to counting the concatenation in one pass.
    let combined = format!("{}{}", lines(0..4000), lines(2000..6000));
    let direct = count_lines(Cursor::new(combined), cfg).unwrap();
    assert_eq!(sketch, direct);
}

#[test]
fn cli_count_accepts_files_and_stdin_dash() {
    let dir = TempDir::new("multifile");
    let fa = dir.path("a.txt");
    let fb = dir.path("b.txt");
    std::fs::write(&fa, lines(0..3000)).unwrap();
    std::fs::write(&fb, lines(1500..4500)).unwrap();
    // Two files.
    let (ok, stdout, _) = run_cli(
        &[
            "count",
            "--p",
            "11",
            fa.to_str().unwrap(),
            fb.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok);
    let est: f64 = stdout.trim().parse().unwrap();
    assert!((est / 4500.0 - 1.0).abs() < 0.07, "estimate {est}");
    // One file plus stdin via `-`.
    let (ok, stdout, _) = run_cli(
        &["count", "--p", "11", fa.to_str().unwrap(), "-"],
        &lines(1500..4500),
    );
    assert!(ok);
    let est: f64 = stdout.trim().parse().unwrap();
    assert!((est / 4500.0 - 1.0).abs() < 0.07, "estimate {est}");
    // Files work with --algo dispatch too.
    let (ok, stdout, _) = run_cli(
        &["count", "--algo", "ull", "--p", "11", fa.to_str().unwrap()],
        "",
    );
    assert!(ok);
    let est: f64 = stdout.trim().parse().unwrap();
    assert!((est / 3000.0 - 1.0).abs() < 0.1, "estimate {est}");
    // A missing file is a clean error.
    let (ok, _, stderr) = run_cli(&["count", "/nonexistent/nope.txt"], "");
    assert!(!ok);
    assert!(!stderr.is_empty());
}

/// `key<TAB>element` lines: `keys` keys, each observing its own element
/// range (with per-key overlap across calls controlled by `range`).
fn keyed_lines(keys: usize, range: std::ops::Range<u32>) -> String {
    let mut out = String::new();
    for i in range {
        out.push_str(&format!("key-{}\telem-{}\n", i as usize % keys, i));
    }
    out
}

#[test]
fn store_library_roundtrip() {
    let dir = TempDir::new("store_lib");
    let store = EllStore::new(8, EllConfig::new(2, 20, 10).unwrap()).unwrap();
    let events = store_ingest(&store, Cursor::new(keyed_lines(5, 0..10_000))).unwrap();
    assert_eq!(events, 10_000);
    assert_eq!(store.key_count(), 5);
    // Each key saw 2000 distinct elements.
    for (key, est) in store.estimates() {
        assert!(
            (est / 2000.0 - 1.0).abs() < 0.1,
            "{key}: estimate {est} vs exact 2000"
        );
    }
    // ELLK snapshot file roundtrip.
    let snap = dir.path("s.ellk");
    save_store(&store, &snap).unwrap();
    let loaded = load_store(&snap).unwrap();
    assert_eq!(loaded.snapshot_bytes(), store.snapshot_bytes());
    // Per-key export + import reproduces every estimate bit-for-bit.
    let export_dir = dir.path("export");
    let entries = export_store(&store, &export_dir).unwrap();
    assert_eq!(entries, 5);
    let imported = import_store(&export_dir).unwrap();
    for ((ka, ea), (kb, eb)) in store.estimates().iter().zip(imported.estimates().iter()) {
        assert_eq!(ka, kb);
        assert_eq!(ea.to_bits(), eb.to_bits(), "{ka}");
    }
    // Exported entry files are ordinary sketch files: `load_any` reads
    // them (sparse keys export as ELLS, hot/dense ones as ELL1).
    let first = load_any(&export_dir.join("entry-000000.ell")).unwrap();
    assert!(first.estimate() > 0.0);
    // Malformed keyed lines are an error.
    assert!(store_ingest(&store, Cursor::new("no-separator\n")).is_err());
}

#[test]
fn cli_store_workflows() {
    let dir = TempDir::new("store_cli");
    let snap = dir.path("traffic.ellk");
    let snap_str = snap.to_str().unwrap();
    // Ingest from stdin.
    let (ok, stdout, stderr) = run_cli(
        &["store", "ingest", "--out", snap_str, "--p", "10", "-"],
        &keyed_lines(4, 0..8000),
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("4 keys"), "{stdout}");
    // Resume into the existing snapshot from a file input.
    let extra = dir.path("extra.tsv");
    std::fs::write(&extra, keyed_lines(4, 4000..12_000)).unwrap();
    let (ok, stdout, stderr) = run_cli(
        &[
            "store",
            "ingest",
            "--out",
            snap_str,
            extra.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("4 keys"), "{stdout}");
    // Query all keys: 3000 distinct elements each after the overlap.
    let (ok, stdout, _) = run_cli(&["store", "query", snap_str], "");
    assert!(ok);
    let rows: Vec<&str> = stdout.lines().collect();
    assert_eq!(rows.len(), 4);
    for row in &rows {
        let (key, est) = row.split_once('\t').expect("key\\testimate");
        let est: f64 = est.parse().unwrap();
        assert!(
            (est / 3000.0 - 1.0).abs() < 0.1,
            "{key}: estimate {est} vs exact 3000"
        );
    }
    // Query single key and the merged union (12000 distinct elements).
    let (ok, stdout, _) = run_cli(&["store", "query", snap_str, "key-0"], "");
    assert!(ok);
    assert!(stdout.starts_with("key-0\t"), "{stdout}");
    let (ok, stdout, _) = run_cli(&["store", "query", "--merged", snap_str], "");
    assert!(ok);
    let merged: f64 = stdout.trim().parse().unwrap();
    assert!(
        (merged / 12_000.0 - 1.0).abs() < 0.1,
        "merged estimate {merged}"
    );
    // Unknown key is a clean error.
    let (ok, _, stderr) = run_cli(&["store", "query", snap_str, "key-9"], "");
    assert!(!ok);
    assert!(stderr.contains("key-9"), "{stderr}");
    // snapshot (export) → restore: per-key estimates survive bit-for-bit.
    let export_dir = dir.path("export");
    let export_str = export_dir.to_str().unwrap();
    let (ok, stdout, stderr) = run_cli(&["store", "snapshot", snap_str, "--out", export_str], "");
    assert!(ok, "{stderr}");
    assert!(stdout.contains("4 entries"), "{stdout}");
    let restored = dir.path("restored.ellk");
    let restored_str = restored.to_str().unwrap();
    let (ok, _, stderr) = run_cli(&["store", "restore", export_str, "--out", restored_str], "");
    assert!(ok, "{stderr}");
    let (_, q1, _) = run_cli(&["store", "query", snap_str], "");
    let (_, q2, _) = run_cli(&["store", "query", restored_str], "");
    assert_eq!(q1, q2, "restored store must answer identically");
    // Usage errors are clean.
    let (ok, _, stderr) = run_cli(&["store"], "");
    assert!(!ok);
    assert!(stderr.contains("subcommand"), "{stderr}");
    let (ok, _, stderr) = run_cli(&["store", "frobnicate"], "");
    assert!(!ok);
    assert!(stderr.contains("frobnicate"), "{stderr}");
}

#[test]
fn similarity_workflow() {
    let cfg = EllConfig::new(2, 20, 11).unwrap();
    // A = 0..6000, B = 3000..9000: |A∩B| = 3000, |A∪B| = 9000, J = 1/3.
    let a = count_lines(Cursor::new(lines(0..6000)), cfg).unwrap();
    let b = count_lines(Cursor::new(lines(3000..9000)), cfg).unwrap();
    let rel = relate(&a, &b).unwrap();
    assert!((rel.a / 6000.0 - 1.0).abs() < 0.06);
    assert!((rel.b / 6000.0 - 1.0).abs() < 0.06);
    assert!((rel.union / 9000.0 - 1.0).abs() < 0.06);
    assert!(
        (rel.jaccard - 1.0 / 3.0).abs() < 0.08,
        "J = {}",
        rel.jaccard
    );
    // Self-similarity is exactly 1 (identical sketches merge to themselves).
    let self_rel = relate(&a, &a).unwrap();
    assert!((self_rel.jaccard - 1.0).abs() < 1e-9);
}

/// `key<TAB>epoch<TAB>element` lines: `keys` keys, each epoch observing
/// its own element range.
fn windowed_lines(keys: usize, epochs: std::ops::Range<u32>, per_epoch: u32) -> String {
    let mut out = String::new();
    for epoch in epochs {
        for i in 0..per_epoch {
            out.push_str(&format!(
                "key-{}\t{epoch}\telem-{epoch}-{i}\n",
                i as usize % keys
            ));
        }
    }
    out
}

#[test]
fn windowed_library_roundtrip() {
    let dir = TempDir::new("window_lib");
    let store = ell_store::WindowedStore::new(4, EllConfig::new(2, 20, 10).unwrap(), 3).unwrap();
    // 4 epochs × 4000 events over 4 keys; each epoch's elements are
    // fresh, so a window of k epochs holds k·1000 distinct per key.
    let events = windowed_ingest(&store, Cursor::new(windowed_lines(4, 0..4, 4000))).unwrap();
    assert_eq!(events, 16_000);
    assert_eq!(store.key_count(), 4);
    assert_eq!(store.current_epoch(), 3);
    for k in 1..=3usize {
        for (key, est) in store.window_estimates(k) {
            let exact = (k * 1000) as f64;
            assert!(
                (est / exact - 1.0).abs() < 0.12,
                "{key}: window k={k} estimate {est} vs exact {exact}"
            );
        }
    }
    // ELLW snapshot file roundtrip: bit-identical windowed answers.
    let snap = dir.path("w.ellw");
    save_windowed(&store, &snap).unwrap();
    let loaded = load_windowed(&snap).unwrap();
    assert_eq!(loaded.snapshot_bytes(), store.snapshot_bytes());
    for k in 1..=3usize {
        assert_eq!(loaded.window_estimates(k), store.window_estimates(k));
    }
    // Malformed lines are errors.
    assert!(windowed_ingest(&store, Cursor::new("no-separator\n")).is_err());
    assert!(windowed_ingest(&store, Cursor::new("key\tnot-a-number\tx\n")).is_err());
    assert!(windowed_ingest(&store, Cursor::new("key\t3\n")).is_err()); // no element field
                                                                        // Space-separated fields work like tabs.
    assert!(windowed_ingest(&store, Cursor::new("key 4 elem\n")).is_ok());
}

#[test]
fn cli_store_window_workflows() {
    let dir = TempDir::new("window_cli");
    let snap = dir.path("traffic.ellw");
    let snap_str = snap.to_str().unwrap();
    // Ingest 3 epochs from stdin into a 3-epoch ring.
    let (ok, stdout, stderr) = run_cli(
        &[
            "store", "window", "ingest", "--out", snap_str, "--p", "10", "--epochs", "3", "-",
        ],
        &windowed_lines(3, 0..3, 3000),
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("3 keys"), "{stdout}");
    assert!(stdout.contains("epoch 2"), "{stdout}");
    // Resume with one more epoch from a file; epoch 0 rotates out.
    let extra = dir.path("extra.tsv");
    std::fs::write(&extra, windowed_lines(3, 3..4, 3000)).unwrap();
    let (ok, _, stderr) = run_cli(
        &[
            "store",
            "window",
            "ingest",
            "--out",
            snap_str,
            extra.to_str().unwrap(),
        ],
        "",
    );
    assert!(ok, "{stderr}");
    // Full-window query (k = 3) vs a 1-epoch window.
    let (ok, q_full, stderr) = run_cli(&["store", "window", "query", snap_str], "");
    assert!(ok, "{stderr}");
    let (ok, q_one, stderr) = run_cli(&["store", "window", "query", snap_str, "--last", "1"], "");
    assert!(ok, "{stderr}");
    let first = |s: &str| -> f64 {
        s.lines()
            .next()
            .and_then(|l| l.split('\t').nth(1))
            .unwrap()
            .parse()
            .unwrap()
    };
    // Each epoch contributes ~1000 fresh elements per key.
    assert!((first(&q_full) / 3000.0 - 1.0).abs() < 0.15, "{q_full}");
    assert!((first(&q_one) / 1000.0 - 1.0).abs() < 0.15, "{q_one}");
    // --stats appends the suffix-cache counter line after the results.
    let (ok, q_stats, stderr) = run_cli(&["store", "window", "query", snap_str, "--stats"], "");
    assert!(ok, "{stderr}");
    assert!((first(&q_stats) / 3000.0 - 1.0).abs() < 0.15, "{q_stats}");
    let stats_line = q_stats
        .lines()
        .find(|l| l.starts_with("# suffix-cache:"))
        .unwrap_or_else(|| panic!("missing stats line in {q_stats:?}"));
    assert!(stats_line.contains("lazy_rebuilds="), "{stats_line}");
    assert!(stats_line.contains("dirty_invalidations=0"), "{stats_line}");
    // Advance far ahead: windows drain, the all-time union remembers.
    let (ok, stdout, stderr) = run_cli(
        &["store", "window", "advance", snap_str, "--epoch", "50"],
        "",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("epoch 50"), "{stdout}");
    let (_, drained, _) = run_cli(&["store", "window", "query", snap_str, "key-0"], "");
    assert_eq!(drained.trim(), "key-0\t0");
    let (_, all_time, _) = run_cli(
        &["store", "window", "query", snap_str, "key-0", "--all-time"],
        "",
    );
    assert!((first(&all_time) / 4000.0 - 1.0).abs() < 0.15, "{all_time}");
    // Usage errors are clean.
    let (ok, _, stderr) = run_cli(&["store", "window"], "");
    assert!(!ok);
    assert!(stderr.contains("subcommand"), "{stderr}");
    let (ok, _, stderr) = run_cli(&["store", "window", "query", snap_str, "--last", "9"], "");
    assert!(!ok);
    assert!(stderr.contains("window"), "{stderr}");
    let (ok, _, stderr) = run_cli(
        &[
            "store",
            "window",
            "query",
            snap_str,
            "--last",
            "2",
            "--all-time",
        ],
        "",
    );
    assert!(!ok, "--last with --all-time must be rejected");
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
    let (ok, _, stderr) = run_cli(&["store", "window", "query", snap_str, "nope-key"], "");
    assert!(!ok);
    assert!(stderr.contains("nope-key"), "{stderr}");
}
