//! Library backing the `ell` command-line tool.
//!
//! Every subcommand is implemented as a plain function over readers,
//! writers and paths so integration tests can exercise them without
//! spawning processes. The sketch file format is exactly
//! [`ExaLogLog::to_bytes`] (or the entropy-coded [`exaloglog::compress`]
//! format, auto-detected by magic), so files interoperate with any other
//! consumer of the library.
//!
//! ```text
//! ell count [--t T --d D --p P] [--out FILE] [FILE...|-]  # distinct lines
//! ell count --algo NAME [--p P] [FILE...|-]       # any registered estimator
//! ell estimate FILE...                            # print estimates
//! ell merge --out FILE IN...                      # union of sketches
//! ell reduce --d D --p P --out FILE IN            # lossless reduction
//! ell compress --out FILE IN                      # entropy-coded copy
//! ell inspect FILE                                # state diagnostics
//! ell store ingest|query|snapshot|restore ...     # keyed sketch store
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ell_core::{Sketch, SketchError};
use ell_hash::{Hasher64, WyHash};
use ell_store::{EllStore, TierConfig};
use exaloglog::compress::{compress, decompress, state_entropy_bits};
use exaloglog::{AdaptiveExaLogLog, EllConfig, EllError, ExaLogLog, TokenSet};
use std::io::BufRead;
use std::path::Path;

/// Number of line hashes buffered per batched `insert_hashes` call.
const LINE_BATCH: usize = 1024;

/// Errors surfaced by the CLI operations.
#[derive(Debug)]
pub enum ToolError {
    /// Sketch-level failure (bad parameters, incompatible merge, …).
    Sketch(EllError),
    /// Trait-layer failure (unknown algorithm name, generic sketch error).
    Algo(SketchError),
    /// Filesystem / stream failure.
    Io(std::io::Error),
    /// Malformed command-line usage.
    Usage(String),
}

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolError::Sketch(e) => write!(f, "{e}"),
            ToolError::Algo(e) => write!(f, "{e}"),
            ToolError::Io(e) => write!(f, "{e}"),
            ToolError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for ToolError {}

impl From<EllError> for ToolError {
    fn from(e: EllError) -> Self {
        ToolError::Sketch(e)
    }
}

impl From<SketchError> for ToolError {
    fn from(e: SketchError) -> Self {
        ToolError::Algo(e)
    }
}

impl From<std::io::Error> for ToolError {
    fn from(e: std::io::Error) -> Self {
        ToolError::Io(e)
    }
}

/// Reads a sketch file, auto-detecting the plain (`ELL1`) and
/// entropy-coded (`ELLZ`) formats.
pub fn load_sketch(path: &Path) -> Result<ExaLogLog, ToolError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() >= 4 && &bytes[..4] == b"ELLZ" {
        Ok(decompress(&bytes)?)
    } else {
        Ok(ExaLogLog::from_bytes(&bytes)?)
    }
}

/// Hashes every line of `input` and streams the hashes into `sketch`
/// through the batched trait hot path, in [`LINE_BATCH`] blocks
/// (bit-for-bit equivalent to per-line insertion by the trait contract).
fn feed_lines<R: BufRead>(
    input: R,
    hasher: &WyHash,
    sketch: &mut dyn Sketch,
) -> Result<(), ToolError> {
    let mut buf = Vec::with_capacity(LINE_BATCH);
    for line in input.lines() {
        buf.push(hasher.hash_bytes(line?.as_bytes()));
        if buf.len() == LINE_BATCH {
            sketch.insert_hashes(&buf);
            buf.clear();
        }
    }
    sketch.insert_hashes(&buf);
    Ok(())
}

/// Opens the named line inputs: each path becomes a buffered reader,
/// `"-"` means standard input, and an empty list defaults to standard
/// input alone (the classic filter-utility convention).
///
/// # Errors
///
/// [`ToolError::Io`] when a file cannot be opened.
pub fn open_inputs(paths: &[String]) -> Result<Vec<Box<dyn BufRead>>, ToolError> {
    if paths.is_empty() {
        return Ok(vec![Box::new(std::io::BufReader::new(std::io::stdin()))]);
    }
    paths
        .iter()
        .map(|p| -> Result<Box<dyn BufRead>, ToolError> {
            Ok(if p == "-" {
                Box::new(std::io::BufReader::new(std::io::stdin()))
            } else {
                Box::new(std::io::BufReader::new(std::fs::File::open(p)?))
            })
        })
        .collect()
}

/// Counts distinct lines from `input` into a fresh sketch.
pub fn count_lines<R: BufRead>(input: R, cfg: EllConfig) -> Result<ExaLogLog, ToolError> {
    let hasher = WyHash::new(0);
    let mut sketch = ExaLogLog::new(cfg);
    feed_lines(input, &hasher, &mut sketch)?;
    Ok(sketch)
}

/// Counts distinct lines across *all* the given inputs (one union
/// sketch), streaming every source through the batched insert path —
/// the engine behind `ell count FILE... -`.
///
/// # Errors
///
/// [`ToolError::Io`] on read failures.
pub fn count_sources(
    inputs: Vec<Box<dyn BufRead>>,
    cfg: EllConfig,
) -> Result<ExaLogLog, ToolError> {
    let hasher = WyHash::new(0);
    let mut sketch = ExaLogLog::new(cfg);
    for input in inputs {
        feed_lines(input, &hasher, &mut sketch)?;
    }
    Ok(sketch)
}

/// Counts distinct lines across all inputs with the named algorithm at
/// precision `p` (see [`count_lines_with_algo`]).
///
/// # Errors
///
/// [`ToolError::Algo`] for unknown names or unsupported precisions,
/// [`ToolError::Io`] on read failures.
pub fn count_sources_with_algo(
    inputs: Vec<Box<dyn BufRead>>,
    algo: &str,
    p: u8,
) -> Result<Box<dyn Sketch>, ToolError> {
    let hasher = WyHash::new(0);
    let mut sketch = ell_baselines::build_sketch(algo, p)?;
    for input in inputs {
        feed_lines(input, &hasher, sketch.as_mut())?;
    }
    Ok(sketch)
}

/// Counts distinct lines from `input` with the named algorithm at
/// precision `p`, dispatching through the object-safe [`Sketch`] facade
/// (see [`ell_baselines::ALGORITHMS`] for the valid names). Lines are
/// hashed exactly as in [`count_lines`], then fed through the batched
/// trait hot path.
///
/// # Errors
///
/// [`ToolError::Algo`] for unknown names or unsupported precisions,
/// [`ToolError::Io`] on read failures.
pub fn count_lines_with_algo<R: BufRead>(
    input: R,
    algo: &str,
    p: u8,
) -> Result<Box<dyn Sketch>, ToolError> {
    let hasher = WyHash::new(0);
    let mut sketch = ell_baselines::build_sketch(algo, p)?;
    feed_lines(input, &hasher, sketch.as_mut())?;
    Ok(sketch)
}

/// A sketch file of any kind: a dense/compressed ExaLogLog, a sparse
/// token set (§4.3), or an adaptive sparse→dense sketch.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchFile {
    /// A dense register-array sketch (`ELL1` or `ELLZ` on disk).
    Dense(ExaLogLog),
    /// A sparse token collection (`ELLT` on disk).
    Tokens(TokenSet),
    /// An adaptive sketch still in its sparse phase (`ELLS` on disk;
    /// once promoted, adaptive sketches serialize as plain `ELL1`).
    Adaptive(AdaptiveExaLogLog),
}

impl SketchFile {
    /// The distinct-count estimate, regardless of representation.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        match self {
            SketchFile::Dense(s) => s.estimate(),
            SketchFile::Tokens(t) => t.estimate(),
            SketchFile::Adaptive(a) => a.estimate(),
        }
    }
}

/// Reads any sketch file, auto-detecting dense (`ELL1`), compressed
/// (`ELLZ`), token (`ELLT`), and adaptive (`ELLS`) formats by magic.
pub fn load_any(path: &Path) -> Result<SketchFile, ToolError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() >= 4 && &bytes[..4] == b"ELLT" {
        Ok(SketchFile::Tokens(TokenSet::from_bytes(&bytes)?))
    } else if bytes.len() >= 4 && &bytes[..4] == b"ELLS" {
        Ok(SketchFile::Adaptive(AdaptiveExaLogLog::from_bytes(&bytes)?))
    } else if bytes.len() >= 4 && &bytes[..4] == b"ELLZ" {
        Ok(SketchFile::Dense(decompress(&bytes)?))
    } else {
        Ok(SketchFile::Dense(ExaLogLog::from_bytes(&bytes)?))
    }
}

/// Collects distinct (v+6)-bit hash tokens from the lines of `input` —
/// the paper's §4.3 sparse mode as a shell pipeline stage.
pub fn collect_tokens<R: BufRead>(input: R, v: u32) -> Result<TokenSet, ToolError> {
    let hasher = WyHash::new(0);
    let mut tokens = TokenSet::new(v)?;
    for line in input.lines() {
        tokens.insert_hash(hasher.hash_bytes(line?.as_bytes()));
    }
    Ok(tokens)
}

/// Writes a token set in the `ELLT` format.
pub fn save_tokens(tokens: &TokenSet, path: &Path) -> Result<(), ToolError> {
    std::fs::write(path, tokens.to_bytes())?;
    Ok(())
}

/// Cardinalities relating two sketches: |A|, |B|, |A ∪ B|, the
/// inclusion–exclusion intersection, and the Jaccard coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetRelation {
    /// Estimated |A|.
    pub a: f64,
    /// Estimated |B|.
    pub b: f64,
    /// Estimated |A ∪ B| (from the merged sketch).
    pub union: f64,
    /// |A| + |B| − |A ∪ B|, clamped at zero.
    pub intersection: f64,
    /// intersection / union (0 when the union is empty).
    pub jaccard: f64,
}

/// Estimates the set relation between two sketch files via merge +
/// inclusion–exclusion. Works across mixed d/p parameters (equal t).
pub fn relate(a: &ExaLogLog, b: &ExaLogLog) -> Result<SetRelation, ToolError> {
    let union_sketch = a.merged_with(b)?;
    let (ea, eb, eu) = (a.estimate(), b.estimate(), union_sketch.estimate());
    let intersection = (ea + eb - eu).max(0.0);
    Ok(SetRelation {
        a: ea,
        b: eb,
        union: eu,
        intersection,
        jaccard: if eu > 0.0 { intersection / eu } else { 0.0 },
    })
}

/// Merges all input sketch files into one (mixed d/p allowed for equal t).
pub fn merge_files(inputs: &[&Path]) -> Result<ExaLogLog, ToolError> {
    let Some((first, rest)) = inputs.split_first() else {
        return Err(ToolError::Usage("merge needs at least one input".into()));
    };
    let mut acc = load_sketch(first)?;
    for path in rest {
        let other = load_sketch(path)?;
        acc = acc.merged_with(&other)?;
    }
    Ok(acc)
}

/// Human-readable diagnostics for a sketch state.
#[must_use]
pub fn inspect(sketch: &ExaLogLog) -> String {
    let cfg = sketch.config();
    let m = cfg.m();
    let occupied = sketch.registers().filter(|&r| r != 0).count();
    let coeffs = sketch.coefficients();
    let entropy = state_entropy_bits(sketch);
    let dense_bits = (cfg.register_array_bytes() * 8) as f64;
    format!(
        "configuration      : {cfg}\n\
         registers          : {m} × {} bits = {} bytes\n\
         occupied registers : {occupied} ({:.1} %)\n\
         recorded events    : {}\n\
         estimate (ML)      : {:.1}\n\
         state-change prob  : {:.3e}\n\
         state entropy      : {:.0} bits ({:.1} % of dense)\n",
        cfg.register_width(),
        cfg.register_array_bytes(),
        occupied as f64 * 100.0 / m as f64,
        coeffs.total_events(),
        sketch.estimate(),
        sketch.state_change_probability(),
        entropy,
        entropy * 100.0 / dense_bits,
    )
}

/// Parses `--key value` style options from an argument list; returns the
/// remaining positional arguments.
pub fn parse_options(
    args: &[String],
    keys: &[&str],
) -> Result<(std::collections::HashMap<String, String>, Vec<String>), ToolError> {
    parse_options_with_flags(args, keys, &[])
}

/// Like [`parse_options`], but additionally accepts value-less boolean
/// flags (recorded in the map as `"true"` when present).
pub fn parse_options_with_flags(
    args: &[String],
    keys: &[&str],
    flags: &[&str],
) -> Result<(std::collections::HashMap<String, String>, Vec<String>), ToolError> {
    let mut opts = std::collections::HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            if flags.contains(&key) {
                opts.insert(key.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            if !keys.contains(&key) {
                return Err(ToolError::Usage(format!("unknown option --{key}")));
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| ToolError::Usage(format!("missing value for --{key}")))?;
            opts.insert(key.to_string(), value.clone());
            i += 2;
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    Ok((opts, positional))
}

/// Builds a configuration from optional `t`/`d`/`p` strings, defaulting to
/// the paper's ELL(2, 20, 12).
pub fn config_from_options(
    t: Option<&String>,
    d: Option<&String>,
    p: Option<&String>,
) -> Result<EllConfig, ToolError> {
    let parse = |s: Option<&String>, default: u8, name: &str| -> Result<u8, ToolError> {
        s.map_or(Ok(default), |v| {
            v.parse()
                .map_err(|_| ToolError::Usage(format!("--{name} expects a small integer")))
        })
    };
    Ok(EllConfig::new(
        parse(t, 2, "t")?,
        parse(d, 20, "d")?,
        parse(p, 12, "p")?,
    )?)
}

/// Builds a [`TierConfig`] from the shared tiering options
/// (`--warm-after N`, `--cold-after N`, `--spill DIR`). Returns `None`
/// when no tiering option is present so callers can skip configuration
/// entirely.
///
/// # Errors
///
/// [`ToolError::Usage`] on a non-positive threshold, `--cold-after`
/// without `--spill` (cold demotion needs a segment file to write to),
/// `--spill` without `--cold-after` (it would never be used), or
/// thresholds ordered cold-before-warm.
pub fn tier_config_from_options(
    opts: &std::collections::HashMap<String, String>,
) -> Result<Option<TierConfig>, ToolError> {
    let parse = |name: &str| -> Result<Option<u64>, ToolError> {
        opts.get(name)
            .map(|v| {
                v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                    ToolError::Usage(format!("--{name} expects a positive tick count"))
                })
            })
            .transpose()
    };
    let warm = parse("warm-after")?;
    let cold = parse("cold-after")?;
    let spill = opts.get("spill");
    if warm.is_none() && cold.is_none() {
        if spill.is_some() {
            return Err(ToolError::Usage(
                "--spill does nothing without --cold-after".into(),
            ));
        }
        return Ok(None);
    }
    if cold.is_some() && spill.is_none() {
        return Err(ToolError::Usage(
            "--cold-after needs --spill DIR for the segment file".into(),
        ));
    }
    if let (Some(w), Some(c)) = (warm, cold) {
        if c < w {
            return Err(ToolError::Usage(
                "--cold-after must be >= --warm-after (keys cool hot -> warm -> cold)".into(),
            ));
        }
    }
    let mut cfg = TierConfig::new();
    if let Some(w) = warm {
        cfg = cfg.warm_after(w);
    }
    if let Some(c) = cold {
        cfg = cfg.cold_after(c);
    }
    if let Some(dir) = spill {
        cfg = cfg.spill_dir(dir);
    }
    Ok(Some(cfg))
}

/// Writes a sketch in the plain format.
pub fn save_sketch(sketch: &ExaLogLog, path: &Path) -> Result<(), ToolError> {
    std::fs::write(path, sketch.to_bytes())?;
    Ok(())
}

/// Writes a sketch in the entropy-coded format.
pub fn save_compressed(sketch: &ExaLogLog, path: &Path) -> Result<(), ToolError> {
    std::fs::write(path, compress(sketch))?;
    Ok(())
}

// ---------------------------------------------------------------------
// Keyed store workflows (`ell store ...`)
// ---------------------------------------------------------------------

/// Splits a keyed input line into `(key, element)` at the first tab, or
/// at the first space when no tab is present.
///
/// # Errors
///
/// [`ToolError::Usage`] when the line has no separator at all.
pub fn split_keyed_line(line: &str) -> Result<(&str, &str), ToolError> {
    line.split_once('\t')
        .or_else(|| line.split_once(' '))
        .ok_or_else(|| {
            ToolError::Usage(format!(
                "keyed line {line:?} has no `key<TAB>element` (or space) separator"
            ))
        })
}

/// Streams keyed lines (`key<TAB>element`) from `input` into the store
/// through its grouped batch ingest, hashing elements exactly like
/// [`count_lines`]. Returns the number of events ingested.
///
/// # Errors
///
/// [`ToolError::Io`] on read failures, [`ToolError::Usage`] on lines
/// without a key separator.
pub fn store_ingest<R: BufRead>(store: &EllStore, input: R) -> Result<u64, ToolError> {
    let hasher = WyHash::new(0);
    let mut buf: Vec<(String, u64)> = Vec::with_capacity(LINE_BATCH);
    let mut total = 0u64;
    let flush = |buf: &mut Vec<(String, u64)>| {
        let refs: Vec<(&str, u64)> = buf.iter().map(|(k, h)| (k.as_str(), *h)).collect();
        store.ingest(&refs);
        buf.clear();
    };
    for line in input.lines() {
        let line = line?;
        let (key, element) = split_keyed_line(&line)?;
        buf.push((key.to_string(), hasher.hash_bytes(element.as_bytes())));
        total += 1;
        if buf.len() == LINE_BATCH {
            flush(&mut buf);
        }
    }
    flush(&mut buf);
    Ok(total)
}

/// Streams keyed lines into the store through `threads` buffered
/// [`ell_store::IngestSession`]s: lines are read in blocks of
/// `threads × LINE_BATCH`, each block split into contiguous per-thread
/// slices ingested concurrently. Hashing matches [`store_ingest`]
/// exactly, and because session merges are monotone the resulting store
/// serializes bit-for-bit identically to the sequential path for any
/// thread count. Returns the number of events ingested.
///
/// # Errors
///
/// [`ToolError::Io`] on read failures, [`ToolError::Usage`] on lines
/// without a key separator.
pub fn store_ingest_parallel<R: BufRead>(
    store: &EllStore,
    input: R,
    threads: usize,
) -> Result<u64, ToolError> {
    if threads <= 1 {
        return store_ingest(store, input);
    }
    let hasher = WyHash::new(0);
    let mut total = 0u64;
    let mut lines = input.lines();
    let mut block: Vec<(String, u64)> = Vec::with_capacity(threads * LINE_BATCH);
    loop {
        block.clear();
        for line in lines.by_ref() {
            let line = line?;
            let (key, element) = split_keyed_line(&line)?;
            block.push((key.to_string(), hasher.hash_bytes(element.as_bytes())));
            total += 1;
            if block.len() == threads * LINE_BATCH {
                break;
            }
        }
        if block.is_empty() {
            return Ok(total);
        }
        let chunk = block.len().div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for part in block.chunks(chunk) {
                scope.spawn(move || {
                    let mut session = store.session();
                    for (key, hash) in part {
                        session.insert(key, *hash);
                    }
                });
            }
        });
    }
}

/// Reads an `ELLK` store snapshot file.
pub fn load_store(path: &Path) -> Result<EllStore, ToolError> {
    Ok(EllStore::from_snapshot_bytes(&std::fs::read(path)?)?)
}

/// Writes the store's `ELLK` snapshot.
pub fn save_store(store: &EllStore, path: &Path) -> Result<(), ToolError> {
    std::fs::write(path, store.snapshot_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------
// Windowed store workflows (`ell store window ...`)
// ---------------------------------------------------------------------

/// Splits a timestamped keyed line into `(key, epoch, element)` at tabs
/// (or single spaces when no tab is present).
///
/// # Errors
///
/// [`ToolError::Usage`] when the line does not have three fields or the
/// epoch is not a nonnegative integer.
pub fn split_windowed_line(line: &str) -> Result<(&str, u64, &str), ToolError> {
    let (key, rest) = line
        .split_once('\t')
        .or_else(|| line.split_once(' '))
        .ok_or_else(|| {
            ToolError::Usage(format!(
                "windowed line {line:?} has no `key<TAB>epoch<TAB>element` separator"
            ))
        })?;
    let (epoch_str, element) = rest
        .split_once('\t')
        .or_else(|| rest.split_once(' '))
        .ok_or_else(|| {
            ToolError::Usage(format!(
                "windowed line {line:?} is missing the element field"
            ))
        })?;
    let epoch: u64 = epoch_str.parse().map_err(|_| {
        ToolError::Usage(format!(
            "windowed line {line:?}: epoch {epoch_str:?} is not a nonnegative integer"
        ))
    })?;
    Ok((key, epoch, element))
}

/// Streams timestamped keyed lines (`key<TAB>epoch<TAB>element`) from
/// `input` into the windowed store through its batched ingest, hashing
/// elements exactly like [`count_lines`]. Consecutive same-epoch lines
/// batch together; an epoch change flushes (so the window advances in
/// stream order). Returns the number of events ingested.
///
/// # Errors
///
/// [`ToolError::Io`] on read failures, [`ToolError::Usage`] on
/// malformed lines.
pub fn windowed_ingest<R: BufRead>(
    store: &ell_store::WindowedStore,
    input: R,
) -> Result<u64, ToolError> {
    let hasher = WyHash::new(0);
    let mut buf: Vec<(String, u64)> = Vec::with_capacity(LINE_BATCH);
    let mut buf_epoch = 0u64;
    let mut total = 0u64;
    let flush = |epoch: u64, buf: &mut Vec<(String, u64)>| {
        let refs: Vec<(&str, u64)> = buf.iter().map(|(k, h)| (k.as_str(), *h)).collect();
        store.ingest(epoch, &refs);
        buf.clear();
    };
    for line in input.lines() {
        let line = line?;
        let (key, epoch, element) = split_windowed_line(&line)?;
        if epoch != buf_epoch && !buf.is_empty() {
            flush(buf_epoch, &mut buf);
        }
        buf_epoch = epoch;
        buf.push((key.to_string(), hasher.hash_bytes(element.as_bytes())));
        total += 1;
        if buf.len() == LINE_BATCH {
            flush(buf_epoch, &mut buf);
        }
    }
    if !buf.is_empty() {
        flush(buf_epoch, &mut buf);
    }
    Ok(total)
}

/// Reads an `ELLW` windowed-store snapshot file.
pub fn load_windowed(path: &Path) -> Result<ell_store::WindowedStore, ToolError> {
    Ok(ell_store::WindowedStore::from_snapshot_bytes(
        &std::fs::read(path)?,
    )?)
}

/// Writes the windowed store's `ELLW` snapshot.
pub fn save_windowed(store: &ell_store::WindowedStore, path: &Path) -> Result<(), ToolError> {
    std::fs::write(path, store.snapshot_bytes())?;
    Ok(())
}

/// Percent-escapes the characters that would break the tab-separated
/// manifest (`%`, tab, newline, carriage return).
fn escape_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for c in key.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_key`].
fn unescape_key(escaped: &str) -> Result<String, ToolError> {
    let mut out = String::with_capacity(escaped.len());
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hex: String = chars.by_ref().take(2).collect();
        if hex.len() != 2 {
            return Err(ToolError::Usage(format!(
                "truncated %-escape {hex:?} in manifest key"
            )));
        }
        let code = u8::from_str_radix(&hex, 16)
            .map_err(|_| ToolError::Usage(format!("bad %-escape {hex:?} in manifest key")))?;
        out.push(char::from(code));
    }
    Ok(out)
}

/// Exports every store entry as an individual sketch file (the existing
/// `ELLS`/`ELL1` wire formats, readable by `ell estimate`) plus a
/// `MANIFEST.tsv` mapping file names back to keys. Returns the number
/// of entries written.
///
/// # Errors
///
/// [`ToolError::Io`] on filesystem failures.
pub fn export_store(store: &EllStore, dir: &Path) -> Result<usize, ToolError> {
    std::fs::create_dir_all(dir)?;
    let entries = store.entries();
    let cfg = store.config();
    let mut manifest = format!(
        "#ellk-export t={} d={} p={} v={} shards={}\n",
        cfg.t(),
        cfg.d(),
        cfg.p(),
        store.token_parameter(),
        store.shard_count()
    );
    for (i, (key, sketch)) in entries.iter().enumerate() {
        let name = format!("entry-{i:06}.ell");
        std::fs::write(dir.join(&name), sketch.to_bytes())?;
        manifest.push_str(&format!("{name}\t{}\n", escape_key(key)));
    }
    std::fs::write(dir.join("MANIFEST.tsv"), manifest)?;
    Ok(entries.len())
}

/// Rebuilds a store from an [`export_store`] directory: the manifest
/// header restores the configuration, every entry file is parsed
/// through the per-sketch wire formats and folded back under its key.
///
/// # Errors
///
/// [`ToolError::Usage`] on a malformed manifest, [`ToolError::Io`] /
/// [`ToolError::Sketch`] on unreadable or corrupt entry files.
pub fn import_store(dir: &Path) -> Result<EllStore, ToolError> {
    let manifest = std::fs::read_to_string(dir.join("MANIFEST.tsv"))?;
    let mut lines = manifest.lines();
    let header = lines
        .next()
        .and_then(|l| l.strip_prefix("#ellk-export "))
        .ok_or_else(|| ToolError::Usage("manifest is missing the #ellk-export header".into()))?;
    let mut fields = std::collections::HashMap::new();
    for pair in header.split_whitespace() {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| ToolError::Usage(format!("bad manifest header field {pair:?}")))?;
        fields.insert(k, v);
    }
    let get = |name: &str| -> Result<u64, ToolError> {
        fields
            .get(name)
            .ok_or_else(|| ToolError::Usage(format!("manifest header lacks {name}=")))?
            .parse()
            .map_err(|_| ToolError::Usage(format!("manifest header field {name} is not a number")))
    };
    let cfg = EllConfig::new(get("t")? as u8, get("d")? as u8, get("p")? as u8)?;
    let store = EllStore::with_token_parameter(get("shards")? as usize, cfg, get("v")? as u32)?;
    for line in lines.filter(|l| !l.is_empty()) {
        let (file, escaped) = line
            .split_once('\t')
            .ok_or_else(|| ToolError::Usage(format!("manifest line {line:?} has no tab")))?;
        let key = unescape_key(escaped)?;
        let sketch = AdaptiveExaLogLog::from_bytes(&std::fs::read(dir.join(file))?)?;
        store.merge_key(&key, &sketch)?;
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn count_lines_deduplicates() {
        let cfg = EllConfig::new(2, 20, 10).unwrap();
        let input = "alice\nbob\nalice\ncarol\nbob\n";
        let sketch = count_lines(Cursor::new(input), cfg).unwrap();
        assert_eq!(sketch.estimate().round() as u64, 3);
    }

    #[test]
    fn inspect_reports_key_fields() {
        let cfg = EllConfig::new(2, 20, 6).unwrap();
        let sketch = count_lines(Cursor::new("a\nb\nc\n"), cfg).unwrap();
        let report = inspect(&sketch);
        assert!(report.contains("ELL(t=2, d=20, p=6)"));
        assert!(report.contains("recorded events"));
        assert!(report.contains("estimate"));
    }

    #[test]
    fn option_parser() {
        let args: Vec<String> = ["--p", "10", "file.ell", "--t", "2"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        let (opts, pos) = parse_options(&args, &["p", "t", "d"]).unwrap();
        assert_eq!(opts["p"], "10");
        assert_eq!(opts["t"], "2");
        assert_eq!(pos, vec!["file.ell"]);
        assert!(parse_options(&args, &["p"]).is_err()); // unknown --t
    }

    #[test]
    fn token_collection_counts() {
        let tokens = collect_tokens(Cursor::new("a\nb\na\nc\nd\n"), 26).unwrap();
        assert_eq!(tokens.len(), 4);
        assert_eq!(tokens.estimate().round() as u64, 4);
    }

    #[test]
    fn relation_between_overlapping_sketches() {
        let cfg = EllConfig::new(2, 20, 12).unwrap();
        let mut a = ExaLogLog::new(cfg);
        let mut b = ExaLogLog::new(cfg);
        let hasher = WyHash::new(0);
        for i in 0..6000u32 {
            a.insert(&hasher, format!("x{i}").as_bytes());
        }
        for i in 3000..9000u32 {
            b.insert(&hasher, format!("x{i}").as_bytes());
        }
        let rel = relate(&a, &b).unwrap();
        assert!(
            (rel.union / 9000.0 - 1.0).abs() < 0.05,
            "union {}",
            rel.union
        );
        assert!(
            (rel.intersection / 3000.0 - 1.0).abs() < 0.25,
            "intersection {}",
            rel.intersection
        );
        assert!(
            (rel.jaccard - 1.0 / 3.0).abs() < 0.1,
            "jaccard {}",
            rel.jaccard
        );
    }

    #[test]
    fn tier_options_validate() {
        let parse = |pairs: &[(&str, &str)]| {
            let map: std::collections::HashMap<String, String> = pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect();
            tier_config_from_options(&map)
        };
        assert!(parse(&[]).unwrap().is_none());
        let cfg = parse(&[("warm-after", "3")]).unwrap().unwrap();
        assert_eq!(cfg.warm_threshold(), Some(3));
        assert_eq!(cfg.cold_threshold(), None);
        let cfg = parse(&[
            ("warm-after", "2"),
            ("cold-after", "5"),
            ("spill", "/tmp/x"),
        ])
        .unwrap()
        .unwrap();
        assert_eq!(cfg.cold_threshold(), Some(5));
        assert!(cfg.spill_directory().is_some());
        assert!(parse(&[("warm-after", "0")]).is_err()); // non-positive
        assert!(parse(&[("cold-after", "4")]).is_err()); // no --spill
        assert!(parse(&[("spill", "/tmp/x")]).is_err()); // spill alone
                                                         // cold sooner than warm makes the lifecycle unreachable
        assert!(parse(&[
            ("warm-after", "5"),
            ("cold-after", "2"),
            ("spill", "/tmp/x")
        ])
        .is_err());
    }

    /// `ell store stats --entropy` reports `state_entropy_bits`, the
    /// information-theoretic bound the warm tier's range coder works
    /// against: the ELLZ payload for the same state must land within a
    /// small constant plus ~10% of `ceil(bits / 8)` past its 16-byte
    /// header. This pins the stat to what demotion actually buys.
    #[test]
    fn store_entropy_pins_compressed_payload_size() {
        let cfg = EllConfig::new(2, 16, 8).unwrap();
        let store = EllStore::new(4, cfg).unwrap();
        let mut sketch = ExaLogLog::new(cfg);
        for i in 0..4000u64 {
            let h = ell_hash::mix64(i);
            store.insert("k", h);
            sketch.insert_hash(h);
        }
        let bits = store.state_entropy_bits("k").unwrap();
        assert!(bits > 0.0);
        let payload = compress(&sketch).len() as f64 - 16.0; // header excluded
        let predicted = (bits / 8.0).ceil();
        assert!(
            payload >= predicted - 2.0,
            "coder beat the entropy bound: {payload} < {predicted}"
        );
        assert!(
            payload <= predicted * 1.1 + 8.0,
            "coder overhead too large: {payload} vs {predicted}"
        );
    }

    #[test]
    fn config_defaults_to_paper_optimum() {
        let cfg = config_from_options(None, None, None).unwrap();
        assert_eq!((cfg.t(), cfg.d(), cfg.p()), (2, 20, 12));
        let cfg = config_from_options(None, None, Some(&"8".to_string())).unwrap();
        assert_eq!(cfg.p(), 8);
        assert!(config_from_options(Some(&"bad".to_string()), None, None).is_err());
    }
}
