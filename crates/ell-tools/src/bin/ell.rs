//! The `ell` command-line tool: approximate distinct counting from the
//! shell, with mergeable, reducible, compressible sketch files.
//!
//! ```text
//! generate sketches:   ... | ell count --p 12 --out today.ell
//! combine shards:      ell merge --out all.ell shard1.ell shard2.ell
//! query:               ell estimate all.ell
//! archive smaller:     ell reduce --d 16 --p 8 --out archive.ell all.ell
//! entropy-code:        ell compress --out all.ellz all.ell
//! debug:               ell inspect all.ell
//! ```

use ell_store::{EllStore, TierStats, WindowedStore};
use ell_tools::{
    collect_tokens, config_from_options, count_sources, count_sources_with_algo, export_store,
    import_store, inspect, load_any, load_sketch, load_store, load_windowed, merge_files,
    open_inputs, parse_options, parse_options_with_flags, relate, save_compressed, save_sketch,
    save_store, save_tokens, save_windowed, store_ingest_parallel, tier_config_from_options,
    windowed_ingest, ToolError,
};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("ell: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), ToolError> {
    let Some((command, rest)) = args.split_first() else {
        print_help();
        return Ok(());
    };
    match command.as_str() {
        "count" => {
            let (opts, positional) = parse_options(rest, &["t", "d", "p", "out", "algo"])?;
            // Positional arguments are input files, `-` is stdin; no
            // positionals defaults to stdin (filter convention).
            let inputs = open_inputs(&positional)?;
            if let Some(algo) = opts.get("algo") {
                // Dispatch by name through the shared `Sketch` facade.
                if opts.contains_key("t") || opts.contains_key("d") {
                    return Err(ToolError::Usage(
                        "--algo selects its own register layout; only --p applies".into(),
                    ));
                }
                if opts.contains_key("out") {
                    return Err(ToolError::Usage(
                        "--out writes ExaLogLog sketch files; use count without --algo".into(),
                    ));
                }
                let p: u8 = opts.get("p").map_or(Ok(12), |s| {
                    s.parse()
                        .map_err(|_| ToolError::Usage("--p expects a small integer".into()))
                })?;
                let sketch = count_sources_with_algo(inputs, algo, p)?;
                println!("{:.0}", sketch.estimate());
                return Ok(());
            }
            let cfg = config_from_options(opts.get("t"), opts.get("d"), opts.get("p"))?;
            let sketch = count_sources(inputs, cfg)?;
            println!("{:.0}", sketch.estimate());
            if let Some(out) = opts.get("out") {
                save_sketch(&sketch, Path::new(out))?;
            }
            Ok(())
        }
        "store" => run_store(rest),
        "estimate" => {
            let (_, positional) = parse_options(rest, &[])?;
            if positional.is_empty() {
                return Err(ToolError::Usage("estimate needs sketch files".into()));
            }
            for path in &positional {
                let sketch = load_any(Path::new(path))?;
                println!("{path}\t{:.0}", sketch.estimate());
            }
            Ok(())
        }
        "tokens" => {
            let (opts, positional) = parse_options(rest, &["v", "out"])?;
            if !positional.is_empty() {
                return Err(ToolError::Usage("tokens reads from stdin only".into()));
            }
            let v: u32 = opts.get("v").map_or(Ok(26), |s| {
                s.parse()
                    .map_err(|_| ToolError::Usage("--v expects an integer".into()))
            })?;
            let stdin = std::io::stdin();
            let tokens = collect_tokens(stdin.lock(), v)?;
            println!("{:.0}", tokens.estimate());
            if let Some(out) = opts.get("out") {
                save_tokens(&tokens, Path::new(out))?;
            }
            Ok(())
        }
        "similarity" => {
            let (_, positional) = parse_options(rest, &[])?;
            let [pa, pb] = positional.as_slice() else {
                return Err(ToolError::Usage(
                    "similarity needs exactly two sketch files".into(),
                ));
            };
            let a = load_sketch(Path::new(pa))?;
            let b = load_sketch(Path::new(pb))?;
            let rel = relate(&a, &b)?;
            println!(
                "|A|={:.0} |B|={:.0} |A∪B|={:.0} |A∩B|≈{:.0} J≈{:.3}",
                rel.a, rel.b, rel.union, rel.intersection, rel.jaccard
            );
            Ok(())
        }
        "merge" => {
            let (opts, positional) = parse_options(rest, &["out"])?;
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("merge needs --out".into()))?;
            let paths: Vec<PathBuf> = positional.iter().map(PathBuf::from).collect();
            let path_refs: Vec<&Path> = paths.iter().map(PathBuf::as_path).collect();
            let merged = merge_files(&path_refs)?;
            save_sketch(&merged, Path::new(out))?;
            println!("{:.0}", merged.estimate());
            Ok(())
        }
        "reduce" => {
            let (opts, positional) = parse_options(rest, &["d", "p", "out"])?;
            let [input] = positional.as_slice() else {
                return Err(ToolError::Usage("reduce needs exactly one input".into()));
            };
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("reduce needs --out".into()))?;
            let sketch = load_sketch(Path::new(input))?;
            let d = opts.get("d").map_or(Ok(sketch.config().d()), |v| {
                v.parse()
                    .map_err(|_| ToolError::Usage("--d expects an integer".into()))
            })?;
            let p = opts.get("p").map_or(Ok(sketch.config().p()), |v| {
                v.parse()
                    .map_err(|_| ToolError::Usage("--p expects an integer".into()))
            })?;
            let reduced = sketch.reduce(d, p)?;
            save_sketch(&reduced, Path::new(out))?;
            println!("{:.0}", reduced.estimate());
            Ok(())
        }
        "compress" => {
            let (opts, positional) = parse_options(rest, &["out"])?;
            let [input] = positional.as_slice() else {
                return Err(ToolError::Usage("compress needs exactly one input".into()));
            };
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("compress needs --out".into()))?;
            let sketch = load_sketch(Path::new(input))?;
            save_compressed(&sketch, Path::new(out))?;
            let before = std::fs::metadata(input)?.len();
            let after = std::fs::metadata(out)?.len();
            println!("{before} -> {after} bytes");
            Ok(())
        }
        "inspect" => {
            let (_, positional) = parse_options(rest, &[])?;
            for path in &positional {
                let sketch = load_sketch(Path::new(path))?;
                print!("{}", inspect(&sketch));
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            print_help();
            Ok(())
        }
        other => Err(ToolError::Usage(format!("unknown command {other}"))),
    }
}

/// The `ell store` subcommand family: a sharded keyed sketch store
/// (`key → AdaptiveExaLogLog`) persisted in the `ELLK` snapshot format.
fn run_store(args: &[String]) -> Result<(), ToolError> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(ToolError::Usage(
            "store needs a subcommand: ingest | query | stats | tiers | snapshot | restore | window"
                .into(),
        ));
    };
    match sub.as_str() {
        "window" => run_store_window(rest),
        "ingest" => {
            let (opts, positional) = parse_options(
                rest,
                &[
                    "out",
                    "shards",
                    "t",
                    "d",
                    "p",
                    "threads",
                    "warm-after",
                    "cold-after",
                    "spill",
                ],
            )?;
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("store ingest needs --out".into()))?;
            let out_path = Path::new(out);
            let threads: usize = opts.get("threads").map_or(Ok(1), |s| {
                s.parse()
                    .map_err(|_| ToolError::Usage("--threads expects a positive integer".into()))
            })?;
            if threads == 0 {
                return Err(ToolError::Usage("--threads must be positive".into()));
            }
            let tiers = tier_config_from_options(&opts)?;
            let mut store = if out_path.exists() {
                // Resume into an existing snapshot; its stored sketch
                // parameters win (--threads only picks the ingest path,
                // so it stays legal on resume).
                if ["shards", "t", "d", "p"]
                    .iter()
                    .any(|k| opts.contains_key(*k))
                {
                    return Err(ToolError::Usage(format!(
                        "{out} exists; its stored parameters apply (drop --shards/--t/--d/--p)"
                    )));
                }
                load_store(out_path)?
            } else {
                let cfg = config_from_options(opts.get("t"), opts.get("d"), opts.get("p"))?;
                let shards: usize = opts.get("shards").map_or(Ok(64), |s| {
                    s.parse()
                        .map_err(|_| ToolError::Usage("--shards expects an integer".into()))
                })?;
                EllStore::new(shards, cfg)?
            };
            let tiered = tiers.is_some();
            if let Some(tiers) = tiers {
                store.set_tier_config(tiers);
            }
            let mut events = 0u64;
            for input in open_inputs(&positional)? {
                events += store_ingest_parallel(&store, input, threads)?;
                // Each input source is one tick of the demotion clock:
                // keys untouched for N whole inputs age past --warm-after
                // / --cold-after N.
                if tiered {
                    store.tick();
                }
            }
            if tiered {
                let (mut warm, mut cold) = store.demote_idle();
                // The ladder moves one rung per sweep; a second sweep
                // lets keys idle past --cold-after reach the spill file
                // in the same run.
                if store.tier_config().cold_threshold().is_some() {
                    let (w2, c2) = store.demote_idle();
                    warm += w2;
                    cold += c2;
                }
                save_store(&store, out_path)?;
                println!("{} keys, {events} events", store.key_count());
                println!("demoted {warm} warm, {cold} cold; snapshot keeps their compressed form");
            } else {
                save_store(&store, out_path)?;
                println!("{} keys, {events} events", store.key_count());
            }
            Ok(())
        }
        "stats" => {
            let (opts, positional) = parse_options_with_flags(rest, &[], &["entropy"])?;
            let [input] = positional.as_slice() else {
                return Err(ToolError::Usage(
                    "store stats needs exactly one snapshot file".into(),
                ));
            };
            let store = load_store(Path::new(input))?;
            println!("keys\t{}", store.key_count());
            println!("memory_bytes\t{}", store.memory_bytes());
            println!("scan_kernel\t{}", exaloglog::kernels::active().name());
            print_tier_stats(&store.tier_stats());
            if opts.contains_key("entropy") {
                // `state_entropy_bits` reads through warm/cold payloads
                // without promoting, so this is residency-neutral.
                for key in store.keys() {
                    let bits = store.state_entropy_bits(&key).expect("listed key exists");
                    println!("entropy\t{key}\t{bits:.1}");
                }
            }
            Ok(())
        }
        "tiers" => {
            let (opts, positional) =
                parse_options(rest, &["warm-after", "cold-after", "spill", "out"])?;
            let [input] = positional.as_slice() else {
                return Err(ToolError::Usage(
                    "store tiers needs exactly one snapshot file".into(),
                ));
            };
            let mut store = load_store(Path::new(input))?;
            let before = store.memory_bytes();
            let Some(tiers) = tier_config_from_options(&opts)? else {
                return Err(ToolError::Usage(
                    "store tiers needs --warm-after and/or --cold-after (with --spill)".into(),
                ));
            };
            // Age every key past the largest threshold, then sweep: the
            // command answers "what would full demotion buy?".
            let horizon = tiers
                .warm_threshold()
                .max(tiers.cold_threshold())
                .expect("tiering enabled");
            store.set_tier_config(tiers);
            store.advance_clock(horizon);
            let (mut warm, mut cold) = store.demote_idle();
            // Second sweep so warm keys due for cold actually spill
            // (the ladder moves one rung per sweep).
            if store.tier_config().cold_threshold().is_some() {
                let (w2, c2) = store.demote_idle();
                warm += w2;
                cold += c2;
            }
            println!("demoted\t{warm} warm, {cold} cold");
            println!("memory_bytes\t{before} -> {}", store.memory_bytes());
            print_tier_stats(&store.tier_stats());
            if let Some(out) = opts.get("out") {
                save_store(&store, Path::new(out))?;
            }
            Ok(())
        }
        "query" => {
            let (opts, positional) = parse_options_with_flags(rest, &[], &["merged"])?;
            let Some((path, keys)) = positional.split_first() else {
                return Err(ToolError::Usage("store query needs a snapshot file".into()));
            };
            let store = load_store(Path::new(path))?;
            if opts.contains_key("merged") {
                println!("{:.0}", store.merged_estimate());
                return Ok(());
            }
            if keys.is_empty() {
                for (key, estimate) in store.estimates() {
                    println!("{key}\t{estimate:.0}");
                }
                return Ok(());
            }
            // Resolve every key before printing anything, so scripts
            // never see a partial result set on failure.
            let rows: Vec<(String, f64)> = keys
                .iter()
                .map(|key| {
                    store
                        .estimate(key)
                        .map(|estimate| (key.clone(), estimate))
                        .ok_or_else(|| ToolError::Usage(format!("unknown key {key:?}")))
                })
                .collect::<Result<_, _>>()?;
            for (key, estimate) in rows {
                println!("{key}\t{estimate:.0}");
            }
            Ok(())
        }
        "snapshot" => {
            let (opts, positional) = parse_options(rest, &["out"])?;
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("store snapshot needs --out DIR".into()))?;
            let [input] = positional.as_slice() else {
                return Err(ToolError::Usage(
                    "store snapshot needs exactly one snapshot file".into(),
                ));
            };
            let store = load_store(Path::new(input))?;
            let entries = export_store(&store, Path::new(out))?;
            println!("{entries} entries exported to {out}");
            Ok(())
        }
        "restore" => {
            let (opts, positional) = parse_options(rest, &["out"])?;
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("store restore needs --out FILE".into()))?;
            let [dir] = positional.as_slice() else {
                return Err(ToolError::Usage(
                    "store restore needs exactly one export directory".into(),
                ));
            };
            let store = import_store(Path::new(dir))?;
            save_store(&store, Path::new(out))?;
            println!("{} keys restored", store.key_count());
            Ok(())
        }
        other => Err(ToolError::Usage(format!(
            "unknown store subcommand {other}; try ingest | query | stats | tiers | \
             snapshot | restore | window"
        ))),
    }
}

/// Prints the residency breakdown shared by `store stats`, `store
/// tiers`, and `store window stats` (tab-separated `name\tvalue` rows,
/// like the rest of the stats output).
fn print_tier_stats(stats: &TierStats) {
    println!(
        "tiers\thot={} sparse={} warm={} cold={}",
        stats.hot_keys, stats.sparse_keys, stats.warm_keys, stats.cold_keys
    );
    println!(
        "tier_traffic\tdemotions_warm={} demotions_cold={} promotions={} parked_deltas={}",
        stats.demotions_warm, stats.demotions_cold, stats.promotions, stats.parked_deltas
    );
    println!(
        "tier_bytes\tresident={} spilled={}",
        stats.resident_bytes, stats.spilled_bytes
    );
    if stats.spill_errors > 0 {
        println!("spill_errors\t{}", stats.spill_errors);
    }
}

/// The `ell store window` subcommand family: a sliding-window keyed
/// store (`key → epoch ring of sub-sketches`) persisted in the `ELLW`
/// snapshot format. Input lines are `key<TAB>epoch<TAB>element`.
fn run_store_window(args: &[String]) -> Result<(), ToolError> {
    let Some((sub, rest)) = args.split_first() else {
        return Err(ToolError::Usage(
            "store window needs a subcommand: ingest | advance | query | stats".into(),
        ));
    };
    match sub.as_str() {
        "ingest" => {
            let (opts, positional) = parse_options(
                rest,
                &["out", "shards", "epochs", "t", "d", "p", "warm-after"],
            )?;
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("store window ingest needs --out".into()))?;
            let out_path = Path::new(out);
            let warm_after: Option<u64> = opts
                .get("warm-after")
                .map(|v| {
                    v.parse::<u64>().ok().filter(|&n| n > 0).ok_or_else(|| {
                        ToolError::Usage("--warm-after expects a positive epoch count".into())
                    })
                })
                .transpose()?;
            let mut store = if out_path.exists() {
                // Resume into an existing snapshot; its parameters win
                // (--warm-after is runtime policy, not a stored
                // parameter, so it stays legal on resume).
                if ["shards", "epochs", "t", "d", "p"]
                    .iter()
                    .any(|k| opts.contains_key(*k))
                {
                    return Err(ToolError::Usage(format!(
                        "{out} exists; its stored parameters apply \
                         (drop --shards/--epochs/--t/--d/--p)"
                    )));
                }
                load_windowed(out_path)?
            } else {
                let cfg = config_from_options(opts.get("t"), opts.get("d"), opts.get("p"))?;
                let shards: usize = opts.get("shards").map_or(Ok(64), |s| {
                    s.parse()
                        .map_err(|_| ToolError::Usage("--shards expects an integer".into()))
                })?;
                let epochs: usize = opts.get("epochs").map_or(Ok(8), |s| {
                    s.parse()
                        .map_err(|_| ToolError::Usage("--epochs expects an integer".into()))
                })?;
                WindowedStore::new(shards, cfg, epochs)?
            };
            store.set_warm_after(warm_after);
            let mut events = 0u64;
            for input in open_inputs(&positional)? {
                events += windowed_ingest(&store, input)?;
            }
            if warm_after.is_some() {
                // Rotation already demotes as it goes; one more sweep
                // catches keys idle since the last advance, so the
                // snapshot stores them compressed.
                store.demote_idle();
            }
            save_windowed(&store, out_path)?;
            println!(
                "{} keys, {events} events, epoch {}",
                store.key_count(),
                store.current_epoch()
            );
            Ok(())
        }
        "advance" => {
            let (opts, positional) = parse_options(rest, &["epoch", "out"])?;
            let [input] = positional.as_slice() else {
                return Err(ToolError::Usage(
                    "store window advance needs exactly one snapshot file".into(),
                ));
            };
            let epoch: u64 = opts
                .get("epoch")
                .ok_or_else(|| ToolError::Usage("store window advance needs --epoch N".into()))?
                .parse()
                .map_err(|_| ToolError::Usage("--epoch expects a nonnegative integer".into()))?;
            let store = load_windowed(Path::new(input))?;
            store.advance(epoch);
            let out = opts.get("out").map_or(input.as_str(), String::as_str);
            save_windowed(&store, Path::new(out))?;
            println!("epoch {}", store.current_epoch());
            Ok(())
        }
        "query" => {
            let (opts, positional) =
                parse_options_with_flags(rest, &["last"], &["all-time", "stats"])?;
            let Some((path, keys)) = positional.split_first() else {
                return Err(ToolError::Usage(
                    "store window query needs a snapshot file".into(),
                ));
            };
            let store = load_windowed(Path::new(path))?;
            let all_time = opts.contains_key("all-time");
            let show_stats = opts.contains_key("stats");
            if all_time && opts.contains_key("last") {
                return Err(ToolError::Usage(
                    "--last and --all-time are mutually exclusive (a trailing window \
                     or the whole history, not both)"
                        .into(),
                ));
            }
            let last_k: usize = opts.get("last").map_or(Ok(store.epoch_window()), |s| {
                s.parse()
                    .map_err(|_| ToolError::Usage("--last expects an integer".into()))
            })?;
            if !all_time && (last_k == 0 || last_k > store.epoch_window()) {
                return Err(ToolError::Usage(format!(
                    "--last {last_k} outside the snapshot's window [1, {}]",
                    store.epoch_window()
                )));
            }
            let estimate_of = |key: &str| -> Option<f64> {
                if all_time {
                    store.estimate_all_time(key)
                } else {
                    store.estimate_window(key, last_k)
                }
            };
            // Suffix-cache effectiveness for the queries this command
            // runs (a restored snapshot starts with cold chains: the
            // first wide query per key is a lazy rebuild, the rest are
            // hits). `#`-prefixed so tab-separated consumers skip it.
            let print_stats = |store: &WindowedStore| {
                if show_stats {
                    let s = store.window_stats();
                    println!(
                        "# suffix-cache: hits={} lazy_rebuilds={} entries_built={} \
                         dirty_invalidations={}",
                        s.suffix_hits,
                        s.lazy_rebuilds,
                        s.suffix_entries_built,
                        s.dirty_invalidations
                    );
                }
            };
            if keys.is_empty() {
                for key in store.keys() {
                    let estimate = estimate_of(&key).expect("listed key exists");
                    println!("{key}\t{estimate:.0}");
                }
                print_stats(&store);
                return Ok(());
            }
            // Resolve every key before printing anything, so scripts
            // never see a partial result set on failure.
            let rows: Vec<(String, f64)> = keys
                .iter()
                .map(|key| {
                    estimate_of(key)
                        .map(|estimate| (key.clone(), estimate))
                        .ok_or_else(|| ToolError::Usage(format!("unknown key {key:?}")))
                })
                .collect::<Result<_, _>>()?;
            for (key, estimate) in rows {
                println!("{key}\t{estimate:.0}");
            }
            print_stats(&store);
            Ok(())
        }
        "stats" => {
            let (_, positional) = parse_options(rest, &[])?;
            let [input] = positional.as_slice() else {
                return Err(ToolError::Usage(
                    "store window stats needs exactly one snapshot file".into(),
                ));
            };
            let store = load_windowed(Path::new(input))?;
            println!("keys\t{}", store.key_count());
            println!("epoch\t{}", store.current_epoch());
            println!("epochs\t{}", store.epoch_window());
            println!("memory_bytes\t{}", store.memory_bytes());
            println!("scan_kernel\t{}", exaloglog::kernels::active().name());
            print_tier_stats(&store.tier_stats());
            Ok(())
        }
        other => Err(ToolError::Usage(format!(
            "unknown store window subcommand {other}; try ingest | advance | query | stats"
        ))),
    }
}

fn print_help() {
    eprintln!(
        "ell — approximate distinct counting (ExaLogLog)\n\n\
         commands:\n\
         \x20 count   [--t T --d D --p P] [--out FILE] [FILE...|-]\n\
         \x20                                             count distinct lines (files or stdin)\n\
         \x20 count   --algo NAME [--p P] [FILE...|-]     count with any registered estimator\n\
         \x20 tokens  [--v V] [--out FILE]                sparse-mode token collection (§4.3)\n\
         \x20 estimate FILE...                            print estimates (dense or token files)\n\
         \x20 merge    --out FILE IN...                   union of sketches\n\
         \x20 similarity A B                              Jaccard / intersection of two sketches\n\
         \x20 reduce   [--d D] [--p P] --out FILE IN      lossless parameter reduction\n\
         \x20 compress --out FILE IN                      entropy-coded copy\n\
         \x20 inspect  FILE...                            state diagnostics\n\n\
         keyed store (key<TAB>element lines; `ELLK` snapshot files):\n\
         \x20 store ingest  --out FILE [--shards N] [--t T --d D --p P] [--threads N]\n\
         \x20               [--warm-after N] [--cold-after N --spill DIR] [FILE...|-]\n\
         \x20                                             (tiering: each input = one clock tick;\n\
         \x20                                             idle keys demote before the snapshot)\n\
         \x20 store query   FILE [KEY...] [--merged]      per-key (or union) estimates\n\
         \x20 store stats   FILE [--entropy]              key count, resident bytes, tier\n\
         \x20                                             breakdown (+ per-key entropy bits)\n\
         \x20 store tiers   FILE [--warm-after N] [--cold-after N --spill DIR] [--out FILE]\n\
         \x20                                             demote everything idle, report the\n\
         \x20                                             memory saved (optionally persist)\n\
         \x20 store snapshot FILE --out DIR               export per-key sketch files + manifest\n\
         \x20 store restore DIR --out FILE                rebuild a snapshot from an export\n\n\
         windowed store (key<TAB>epoch<TAB>element lines; `ELLW` snapshot files):\n\
         \x20 store window ingest  --out FILE [--epochs E] [--shards N] [--t T --d D --p P]\n\
         \x20                       [--warm-after N] [FILE...|-]\n\
         \x20                                             per-epoch ingest (auto-advances;\n\
         \x20                                             idle rings demote to compressed form)\n\
         \x20 store window advance FILE --epoch N [--out FILE]\n\
         \x20                                             rotate the window forward\n\
         \x20 store window query   FILE [KEY...] [--last K] [--all-time] [--stats]\n\
         \x20                                             trailing-window estimates\n\
         \x20                                             (--stats: suffix-cache counters)\n\
         \x20 store window stats   FILE                   epoch, resident bytes, tier breakdown\n\n\
         algorithms for count --algo:\n\
         \x20 {}",
        ell_baselines::ALGORITHMS.join(", ")
    );
}
