//! The `ell` command-line tool: approximate distinct counting from the
//! shell, with mergeable, reducible, compressible sketch files.
//!
//! ```text
//! generate sketches:   ... | ell count --p 12 --out today.ell
//! combine shards:      ell merge --out all.ell shard1.ell shard2.ell
//! query:               ell estimate all.ell
//! archive smaller:     ell reduce --d 16 --p 8 --out archive.ell all.ell
//! entropy-code:        ell compress --out all.ellz all.ell
//! debug:               ell inspect all.ell
//! ```

use ell_tools::{
    collect_tokens, config_from_options, count_lines, count_lines_with_algo, inspect, load_any,
    load_sketch, merge_files, parse_options, relate, save_compressed, save_sketch, save_tokens,
    ToolError,
};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = run(&args) {
        eprintln!("ell: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), ToolError> {
    let Some((command, rest)) = args.split_first() else {
        print_help();
        return Ok(());
    };
    match command.as_str() {
        "count" => {
            let (opts, positional) = parse_options(rest, &["t", "d", "p", "out", "algo"])?;
            if !positional.is_empty() {
                return Err(ToolError::Usage("count reads from stdin only".into()));
            }
            let stdin = std::io::stdin();
            if let Some(algo) = opts.get("algo") {
                // Dispatch by name through the shared `Sketch` facade.
                if opts.contains_key("t") || opts.contains_key("d") {
                    return Err(ToolError::Usage(
                        "--algo selects its own register layout; only --p applies".into(),
                    ));
                }
                if opts.contains_key("out") {
                    return Err(ToolError::Usage(
                        "--out writes ExaLogLog sketch files; use count without --algo".into(),
                    ));
                }
                let p: u8 = opts.get("p").map_or(Ok(12), |s| {
                    s.parse()
                        .map_err(|_| ToolError::Usage("--p expects a small integer".into()))
                })?;
                let sketch = count_lines_with_algo(stdin.lock(), algo, p)?;
                println!("{:.0}", sketch.estimate());
                return Ok(());
            }
            let cfg = config_from_options(opts.get("t"), opts.get("d"), opts.get("p"))?;
            let sketch = count_lines(stdin.lock(), cfg)?;
            println!("{:.0}", sketch.estimate());
            if let Some(out) = opts.get("out") {
                save_sketch(&sketch, Path::new(out))?;
            }
            Ok(())
        }
        "estimate" => {
            let (_, positional) = parse_options(rest, &[])?;
            if positional.is_empty() {
                return Err(ToolError::Usage("estimate needs sketch files".into()));
            }
            for path in &positional {
                let sketch = load_any(Path::new(path))?;
                println!("{path}\t{:.0}", sketch.estimate());
            }
            Ok(())
        }
        "tokens" => {
            let (opts, positional) = parse_options(rest, &["v", "out"])?;
            if !positional.is_empty() {
                return Err(ToolError::Usage("tokens reads from stdin only".into()));
            }
            let v: u32 = opts.get("v").map_or(Ok(26), |s| {
                s.parse()
                    .map_err(|_| ToolError::Usage("--v expects an integer".into()))
            })?;
            let stdin = std::io::stdin();
            let tokens = collect_tokens(stdin.lock(), v)?;
            println!("{:.0}", tokens.estimate());
            if let Some(out) = opts.get("out") {
                save_tokens(&tokens, Path::new(out))?;
            }
            Ok(())
        }
        "similarity" => {
            let (_, positional) = parse_options(rest, &[])?;
            let [pa, pb] = positional.as_slice() else {
                return Err(ToolError::Usage(
                    "similarity needs exactly two sketch files".into(),
                ));
            };
            let a = load_sketch(Path::new(pa))?;
            let b = load_sketch(Path::new(pb))?;
            let rel = relate(&a, &b)?;
            println!(
                "|A|={:.0} |B|={:.0} |A∪B|={:.0} |A∩B|≈{:.0} J≈{:.3}",
                rel.a, rel.b, rel.union, rel.intersection, rel.jaccard
            );
            Ok(())
        }
        "merge" => {
            let (opts, positional) = parse_options(rest, &["out"])?;
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("merge needs --out".into()))?;
            let paths: Vec<PathBuf> = positional.iter().map(PathBuf::from).collect();
            let path_refs: Vec<&Path> = paths.iter().map(PathBuf::as_path).collect();
            let merged = merge_files(&path_refs)?;
            save_sketch(&merged, Path::new(out))?;
            println!("{:.0}", merged.estimate());
            Ok(())
        }
        "reduce" => {
            let (opts, positional) = parse_options(rest, &["d", "p", "out"])?;
            let [input] = positional.as_slice() else {
                return Err(ToolError::Usage("reduce needs exactly one input".into()));
            };
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("reduce needs --out".into()))?;
            let sketch = load_sketch(Path::new(input))?;
            let d = opts.get("d").map_or(Ok(sketch.config().d()), |v| {
                v.parse()
                    .map_err(|_| ToolError::Usage("--d expects an integer".into()))
            })?;
            let p = opts.get("p").map_or(Ok(sketch.config().p()), |v| {
                v.parse()
                    .map_err(|_| ToolError::Usage("--p expects an integer".into()))
            })?;
            let reduced = sketch.reduce(d, p)?;
            save_sketch(&reduced, Path::new(out))?;
            println!("{:.0}", reduced.estimate());
            Ok(())
        }
        "compress" => {
            let (opts, positional) = parse_options(rest, &["out"])?;
            let [input] = positional.as_slice() else {
                return Err(ToolError::Usage("compress needs exactly one input".into()));
            };
            let out = opts
                .get("out")
                .ok_or_else(|| ToolError::Usage("compress needs --out".into()))?;
            let sketch = load_sketch(Path::new(input))?;
            save_compressed(&sketch, Path::new(out))?;
            let before = std::fs::metadata(input)?.len();
            let after = std::fs::metadata(out)?.len();
            println!("{before} -> {after} bytes");
            Ok(())
        }
        "inspect" => {
            let (_, positional) = parse_options(rest, &[])?;
            for path in &positional {
                let sketch = load_sketch(Path::new(path))?;
                print!("{}", inspect(&sketch));
            }
            Ok(())
        }
        "--help" | "-h" | "help" => {
            print_help();
            Ok(())
        }
        other => Err(ToolError::Usage(format!("unknown command {other}"))),
    }
}

fn print_help() {
    eprintln!(
        "ell — approximate distinct counting (ExaLogLog)\n\n\
         commands:\n\
         \x20 count   [--t T --d D --p P] [--out FILE]   count distinct stdin lines\n\
         \x20 count   --algo NAME [--p P]                 count with any registered estimator\n\
         \x20 tokens  [--v V] [--out FILE]                sparse-mode token collection (§4.3)\n\
         \x20 estimate FILE...                            print estimates (dense or token files)\n\
         \x20 merge    --out FILE IN...                   union of sketches\n\
         \x20 similarity A B                              Jaccard / intersection of two sketches\n\
         \x20 reduce   [--d D] [--p P] --out FILE IN      lossless parameter reduction\n\
         \x20 compress --out FILE IN                      entropy-coded copy\n\
         \x20 inspect  FILE...                            state diagnostics\n\n\
         algorithms for count --algo:\n\
         \x20 {}",
        ell_baselines::ALGORITHMS.join(", ")
    );
}
