//! 64-bit hash functions for probabilistic distinct-count sketches.
//!
//! ExaLogLog — like HyperLogLog — consumes a high-quality, uniformly
//! distributed 64-bit hash per element. The paper recommends WyHash,
//! Komihash or PolymurHash and uses Murmur3 (128-bit) in its benchmark
//! comparison because that is Apache DataSketches' built-in hash. This crate
//! provides from-scratch implementations of:
//!
//! * [`WyHash`] — a port of wyhash *final 4*, the paper's first
//!   recommendation; extremely fast on short keys.
//! * [`Xxh64`] — XXH64, a widely deployed streaming-friendly hash.
//! * [`Murmur3_128`] — MurmurHash3 `x64_128`; its low 64 bits are what
//!   DataSketches feeds to its sketches, so Table 2 parity uses this.
//! * [`SplitMix64`] — both a 64→64-bit finalizer ([`mix64`]) and a tiny
//!   seedable RNG used by the simulation harness.
//!
//! All hashers implement the object-safe [`Hasher64`] trait so any sketch
//! can be parameterized over the hash function.
//!
//! # Example
//!
//! ```
//! use ell_hash::{Hasher64, WyHash};
//!
//! let h = WyHash::new(0);
//! let a = h.hash_bytes(b"user-1842");
//! let b = h.hash_bytes(b"user-1842");
//! assert_eq!(a, b); // deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod murmur3;
mod splitmix;
mod wyhash;
mod xxh64;

pub use murmur3::Murmur3_128;
pub use splitmix::{mix64, unmix64, SplitMix64};
pub use wyhash::WyHash;
pub use xxh64::Xxh64;

/// A stateless 64-bit hash function with an embedded seed.
///
/// Implementations must be deterministic: equal inputs always produce equal
/// outputs for the same hasher value.
pub trait Hasher64 {
    /// Hashes a byte slice to a 64-bit value.
    fn hash_bytes(&self, data: &[u8]) -> u64;

    /// Hashes a `u64` key. The default implementation hashes its
    /// little-endian byte representation; implementations may override this
    /// with a faster specialization.
    #[inline]
    fn hash_u64(&self, x: u64) -> u64 {
        self.hash_bytes(&x.to_le_bytes())
    }

    /// Hashes a string slice.
    #[inline]
    fn hash_str(&self, s: &str) -> u64 {
        self.hash_bytes(s.as_bytes())
    }
}

#[inline]
pub(crate) fn read_u64_le(data: &[u8], offset: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&data[offset..offset + 8]);
    u64::from_le_bytes(buf)
}

#[inline]
pub(crate) fn read_u32_le(data: &[u8], offset: usize) -> u64 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&data[offset..offset + 4]);
    u64::from(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hashers() -> Vec<(&'static str, Box<dyn Hasher64>)> {
        vec![
            ("wyhash", Box::new(WyHash::new(0))),
            ("wyhash-seeded", Box::new(WyHash::new(0xdead_beef))),
            ("xxh64", Box::new(Xxh64::new(0))),
            ("murmur3", Box::new(Murmur3_128::new(0))),
        ]
    }

    #[test]
    fn deterministic() {
        for (name, h) in hashers() {
            for len in [0usize, 1, 3, 4, 8, 15, 16, 17, 31, 47, 48, 49, 100] {
                let data: Vec<u8> = (0..len as u8).collect();
                assert_eq!(h.hash_bytes(&data), h.hash_bytes(&data), "{name} len={len}");
            }
        }
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        // 20k distinct short keys; any collision in 64 bits would be
        // astronomically unlikely for a sound hash.
        for (name, h) in hashers() {
            let mut seen = std::collections::HashSet::new();
            for i in 0u32..20_000 {
                let v = h.hash_bytes(format!("key-{i}").as_bytes());
                assert!(seen.insert(v), "{name}: collision at key-{i}");
            }
        }
    }

    #[test]
    fn seeds_change_output() {
        let a = WyHash::new(1).hash_bytes(b"abc");
        let b = WyHash::new(2).hash_bytes(b"abc");
        assert_ne!(a, b);
        let a = Xxh64::new(1).hash_bytes(b"abc");
        let b = Xxh64::new(2).hash_bytes(b"abc");
        assert_ne!(a, b);
        let a = Murmur3_128::new(1).hash_bytes(b"abc");
        let b = Murmur3_128::new(2).hash_bytes(b"abc");
        assert_ne!(a, b);
    }

    /// Cheap avalanche check: flipping any single input bit should flip
    /// roughly half the output bits on average. We test the mean flip count
    /// over bit positions stays within a generous band around 32.
    #[test]
    fn avalanche_quality() {
        for (name, h) in hashers() {
            let base: Vec<u8> = (0..32u8).collect();
            let h0 = h.hash_bytes(&base);
            let mut total_flips = 0u32;
            let nbits = base.len() * 8;
            for bit in 0..nbits {
                let mut flipped = base.clone();
                flipped[bit / 8] ^= 1 << (bit % 8);
                total_flips += (h.hash_bytes(&flipped) ^ h0).count_ones();
            }
            let mean = f64::from(total_flips) / nbits as f64;
            assert!(
                (mean - 32.0).abs() < 3.0,
                "{name}: mean avalanche {mean:.2} outside [29, 35]"
            );
        }
    }

    /// Output bits should be individually unbiased across many keys.
    #[test]
    fn bit_balance() {
        for (name, h) in hashers() {
            let n = 4096u64;
            let mut ones = [0u32; 64];
            for i in 0..n {
                let v = h.hash_u64(i);
                for (b, count) in ones.iter_mut().enumerate() {
                    *count += ((v >> b) & 1) as u32;
                }
            }
            for (b, &count) in ones.iter().enumerate() {
                let frac = f64::from(count) / n as f64;
                // ~4 sigma band for a fair coin over 4096 trials (sigma ~ 0.0078)
                assert!(
                    (frac - 0.5).abs() < 0.04,
                    "{name}: output bit {b} biased: {frac:.3}"
                );
            }
        }
    }

    #[test]
    fn hash_u64_matches_bytes() {
        for (name, h) in hashers() {
            for x in [0u64, 1, 42, u64::MAX, 0x0123_4567_89ab_cdef] {
                assert_eq!(h.hash_u64(x), h.hash_bytes(&x.to_le_bytes()), "{name}");
            }
        }
    }
}
