//! A port of wyhash *final 4* (Wang Yi), the paper's first-choice hash.
//!
//! wyhash is built around `wymum`, a 64×64→128-bit multiply whose halves
//! are folded together. It reads the input in 48-byte stripes with three
//! lanes, then 16-byte chunks, with dedicated small-key paths, and is among
//! the fastest high-quality hashes for the short keys typical of
//! distinct-count workloads.
//!
//! This is a from-scratch implementation; the pinned test vectors are
//! golden values of *this* implementation (the environment is offline, so
//! upstream vectors cannot be fetched). Statistical quality is verified by
//! the avalanche and bit-balance tests in the crate root.

use crate::{read_u32_le, read_u64_le, Hasher64};

/// The wyhash default secret (wyp constants of wyhash final 4).
const SECRET: [u64; 4] = [
    0x2d35_8dcc_aa6c_78a5,
    0x8bb8_4b93_962e_acc9,
    0x4b33_a62e_d433_d4a3,
    0x4d5a_2da5_1de1_aa47,
];

#[inline]
fn wymum(a: u64, b: u64) -> (u64, u64) {
    let r = u128::from(a) * u128::from(b);
    (r as u64, (r >> 64) as u64)
}

#[inline]
fn wymix(a: u64, b: u64) -> u64 {
    let (lo, hi) = wymum(a, b);
    lo ^ hi
}

/// Reads 1–3 bytes in the wyhash "wyr3" pattern.
#[inline]
fn wyr3(data: &[u8], len: usize) -> u64 {
    (u64::from(data[0]) << 16) | (u64::from(data[len >> 1]) << 8) | u64::from(data[len - 1])
}

/// wyhash final 4 with a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WyHash {
    seed: u64,
}

impl WyHash {
    /// Creates a wyhash instance with the given seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        WyHash { seed }
    }

    /// Hashes `data` and returns a 64-bit value.
    #[must_use]
    pub fn hash(&self, data: &[u8]) -> u64 {
        let len = data.len();
        let mut seed = self.seed ^ wymix(self.seed ^ SECRET[0], SECRET[1]);
        let (a, b);
        if len <= 16 {
            if len >= 4 {
                a = (read_u32_le(data, 0) << 32) | read_u32_le(data, (len >> 3) << 2);
                b = (read_u32_le(data, len - 4) << 32)
                    | read_u32_le(data, len - 4 - ((len >> 3) << 2));
            } else if len > 0 {
                a = wyr3(data, len);
                b = 0;
            } else {
                a = 0;
                b = 0;
            }
        } else {
            let mut i = len;
            let mut p = 0usize;
            if i > 48 {
                let mut see1 = seed;
                let mut see2 = seed;
                loop {
                    seed = wymix(
                        read_u64_le(data, p) ^ SECRET[1],
                        read_u64_le(data, p + 8) ^ seed,
                    );
                    see1 = wymix(
                        read_u64_le(data, p + 16) ^ SECRET[2],
                        read_u64_le(data, p + 24) ^ see1,
                    );
                    see2 = wymix(
                        read_u64_le(data, p + 32) ^ SECRET[3],
                        read_u64_le(data, p + 40) ^ see2,
                    );
                    p += 48;
                    i -= 48;
                    if i <= 48 {
                        break;
                    }
                }
                seed ^= see1 ^ see2;
            }
            while i > 16 {
                seed = wymix(
                    read_u64_le(data, p) ^ SECRET[1],
                    read_u64_le(data, p + 8) ^ seed,
                );
                i -= 16;
                p += 16;
            }
            a = read_u64_le(data, len - 16);
            b = read_u64_le(data, len - 8);
        }
        let (a, b) = wymum(a ^ SECRET[1], b ^ seed);
        wymix(a ^ SECRET[0] ^ len as u64, b ^ SECRET[1])
    }
}

impl Hasher64 for WyHash {
    #[inline]
    fn hash_bytes(&self, data: &[u8]) -> u64 {
        self.hash(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_length_classes() {
        // Every branch: 0, 1..=3 (wyr3), 4..=16 (wyr4 pairs), 17..=48
        // (16-byte loop), 49.. (48-byte stripes), plus exact boundaries.
        let mut outputs = std::collections::HashSet::new();
        for len in [
            0usize, 1, 2, 3, 4, 7, 8, 9, 15, 16, 17, 32, 47, 48, 49, 96, 97, 144, 200,
        ] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let v = WyHash::new(0).hash(&data);
            assert!(outputs.insert(v), "duplicate output for len {len}");
        }
    }

    #[test]
    fn golden_values_pinned() {
        // Golden values of this implementation (the environment is offline,
        // so upstream vectors cannot be fetched). If these change, the hash
        // — and therefore every serialized sketch fingerprint derived from
        // it — has changed, which is a breaking event worth noticing.
        let h = WyHash::new(0);
        assert_eq!(h.hash(b""), 0x9322_8a4d_e0ee_c5a2);
        assert_eq!(h.hash(b"abc"), 0x989b_4a20_9c10_11c9);
        assert_eq!(
            h.hash(b"The quick brown fox jumps over the lazy dog"),
            0x08e4_45df_107b_b587
        );
    }

    #[test]
    fn single_byte_inputs_distinct() {
        let h = WyHash::new(0);
        let mut seen = std::collections::HashSet::new();
        for b in 0u8..=255 {
            assert!(seen.insert(h.hash(&[b])), "collision on byte {b}");
        }
    }

    #[test]
    fn prefix_is_not_ignored() {
        let h = WyHash::new(0);
        let long_a: Vec<u8> = std::iter::once(b'a').chain([0u8; 100]).collect();
        let long_b: Vec<u8> = std::iter::once(b'b').chain([0u8; 100]).collect();
        assert_ne!(h.hash(&long_a), h.hash(&long_b));
    }
}
