//! XXH64 (Yann Collet): a widely deployed 64-bit hash.
//!
//! XXH64 processes the input in 32-byte stripes across four rotating
//! accumulators, then folds the remainder through 8-, 4- and 1-byte steps
//! and a final avalanche. The empty-input vector `0xEF46DB3751D8E999`
//! (seed 0) is pinned against the published reference value.

use crate::{read_u32_le, read_u64_le, Hasher64};

const P1: u64 = 0x9e37_79b1_85eb_ca87;
const P2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const P3: u64 = 0x1656_67b1_9e37_79f9;
const P4: u64 = 0x85eb_ca77_c2b2_ae63;
const P5: u64 = 0x27d4_eb2f_1656_67c5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

/// XXH64 with a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xxh64 {
    seed: u64,
}

impl Xxh64 {
    /// Creates an XXH64 instance with the given seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Xxh64 { seed }
    }

    /// Hashes `data` and returns the 64-bit digest.
    #[must_use]
    pub fn hash(&self, data: &[u8]) -> u64 {
        let len = data.len();
        let mut p = 0usize;
        let mut h: u64;
        if len >= 32 {
            let mut v1 = self.seed.wrapping_add(P1).wrapping_add(P2);
            let mut v2 = self.seed.wrapping_add(P2);
            let mut v3 = self.seed;
            let mut v4 = self.seed.wrapping_sub(P1);
            while p + 32 <= len {
                v1 = round(v1, read_u64_le(data, p));
                v2 = round(v2, read_u64_le(data, p + 8));
                v3 = round(v3, read_u64_le(data, p + 16));
                v4 = round(v4, read_u64_le(data, p + 24));
                p += 32;
            }
            h = v1
                .rotate_left(1)
                .wrapping_add(v2.rotate_left(7))
                .wrapping_add(v3.rotate_left(12))
                .wrapping_add(v4.rotate_left(18));
            h = merge_round(h, v1);
            h = merge_round(h, v2);
            h = merge_round(h, v3);
            h = merge_round(h, v4);
        } else {
            h = self.seed.wrapping_add(P5);
        }
        h = h.wrapping_add(len as u64);
        while p + 8 <= len {
            h ^= round(0, read_u64_le(data, p));
            h = h.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
            p += 8;
        }
        if p + 4 <= len {
            h ^= read_u32_le(data, p).wrapping_mul(P1);
            h = h.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
            p += 4;
        }
        while p < len {
            h ^= u64::from(data[p]).wrapping_mul(P5);
            h = h.rotate_left(11).wrapping_mul(P1);
            p += 1;
        }
        h ^= h >> 33;
        h = h.wrapping_mul(P2);
        h ^= h >> 29;
        h = h.wrapping_mul(P3);
        h ^= h >> 32;
        h
    }
}

impl Hasher64 for Xxh64 {
    #[inline]
    fn hash_bytes(&self, data: &[u8]) -> u64 {
        self.hash(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_empty() {
        // Published reference value for XXH64 of the empty input, seed 0.
        assert_eq!(Xxh64::new(0).hash(b""), 0xef46_db37_51d8_e999);
    }

    #[test]
    fn reference_vector_abc() {
        // Published reference value for XXH64("abc"), seed 0.
        assert_eq!(Xxh64::new(0).hash(b"abc"), 0x44bc_2cf5_ad77_0999);
    }

    #[test]
    fn length_boundaries_distinct() {
        let h = Xxh64::new(0);
        let mut seen = std::collections::HashSet::new();
        for len in 0..128usize {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            assert!(seen.insert(h.hash(&data)), "collision at len {len}");
        }
    }

    #[test]
    fn seed_shifts_everything() {
        let data = b"hello world";
        let a = Xxh64::new(0).hash(data);
        let b = Xxh64::new(1).hash(data);
        assert_ne!(a, b);
        assert!(
            (a ^ b).count_ones() > 16,
            "seeds should decorrelate outputs"
        );
    }
}
