//! MurmurHash3 `x64_128` (Austin Appleby).
//!
//! The Apache DataSketches library — the source of the HLL and CPC
//! baselines in the paper's Table 2 — hashes every element with the 128-bit
//! variant of Murmur3 and feeds the low 64 bits to its sketches. The paper
//! therefore used Murmur3 for *all* algorithms in its performance
//! comparison; this implementation provides the same for our benches.

use crate::{read_u64_le, Hasher64};

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// MurmurHash3 `x64_128` with a fixed seed.
///
/// [`Hasher64::hash_bytes`] returns the low 64 bits of the 128-bit digest
/// (the same convention DataSketches uses); [`Murmur3_128::hash128`]
/// exposes the full digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(non_camel_case_types)]
pub struct Murmur3_128 {
    seed: u64,
}

impl Murmur3_128 {
    /// Creates a Murmur3 instance with the given seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Murmur3_128 { seed }
    }

    /// Hashes `data` and returns the full 128-bit digest as `(h1, h2)`.
    #[must_use]
    pub fn hash128(&self, data: &[u8]) -> (u64, u64) {
        let len = data.len();
        let nblocks = len / 16;
        let mut h1 = self.seed;
        let mut h2 = self.seed;

        for i in 0..nblocks {
            let mut k1 = read_u64_le(data, i * 16);
            let mut k2 = read_u64_le(data, i * 16 + 8);

            k1 = k1.wrapping_mul(C1);
            k1 = k1.rotate_left(31);
            k1 = k1.wrapping_mul(C2);
            h1 ^= k1;
            h1 = h1.rotate_left(27);
            h1 = h1.wrapping_add(h2);
            h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

            k2 = k2.wrapping_mul(C2);
            k2 = k2.rotate_left(33);
            k2 = k2.wrapping_mul(C1);
            h2 ^= k2;
            h2 = h2.rotate_left(31);
            h2 = h2.wrapping_add(h1);
            h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
        }

        let tail = &data[nblocks * 16..];
        let mut k1: u64 = 0;
        let mut k2: u64 = 0;
        let rem = len & 15;
        if rem > 8 {
            for (j, &b) in tail[8..rem].iter().enumerate() {
                k2 |= u64::from(b) << (8 * j);
            }
            k2 = k2.wrapping_mul(C2);
            k2 = k2.rotate_left(33);
            k2 = k2.wrapping_mul(C1);
            h2 ^= k2;
        }
        if rem > 0 {
            for (j, &b) in tail[..rem.min(8)].iter().enumerate() {
                k1 |= u64::from(b) << (8 * j);
            }
            k1 = k1.wrapping_mul(C1);
            k1 = k1.rotate_left(31);
            k1 = k1.wrapping_mul(C2);
            h1 ^= k1;
        }

        h1 ^= len as u64;
        h2 ^= len as u64;
        h1 = h1.wrapping_add(h2);
        h2 = h2.wrapping_add(h1);
        h1 = fmix64(h1);
        h2 = fmix64(h2);
        h1 = h1.wrapping_add(h2);
        h2 = h2.wrapping_add(h1);
        (h1, h2)
    }
}

impl Hasher64 for Murmur3_128 {
    #[inline]
    fn hash_bytes(&self, data: &[u8]) -> u64 {
        self.hash128(data).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_fox() {
        // The widely published x64_128 vector: hashing "The quick brown fox
        // jumps over the lazy dog" with seed 0 yields the byte string
        // 6c1b07bc7bbc4be347939ac4a93c437a (little-endian h1 ‖ h2).
        let (h1, h2) = Murmur3_128::new(0).hash128(b"The quick brown fox jumps over the lazy dog");
        assert_eq!(h1, 0xe34b_bc7b_bc07_1b6c);
        assert_eq!(h2, 0x7a43_3ca9_c49a_9347);
    }

    #[test]
    fn empty_seed_zero_is_zero() {
        // Well-known property of the reference implementation: all-zero
        // state, zero length, zero tail → both halves stay zero.
        assert_eq!(Murmur3_128::new(0).hash128(b""), (0, 0));
    }

    #[test]
    fn tail_lengths_all_distinct() {
        let h = Murmur3_128::new(0);
        let mut seen = std::collections::HashSet::new();
        for len in 0..64usize {
            let data: Vec<u8> = (0..len).map(|i| (i + 1) as u8).collect();
            assert!(seen.insert(h.hash128(&data)), "collision at len {len}");
        }
    }

    #[test]
    fn both_halves_depend_on_input() {
        let h = Murmur3_128::new(0);
        let (a1, a2) = h.hash128(b"abcdefgh12345678x");
        let (b1, b2) = h.hash128(b"abcdefgh12345678y");
        assert_ne!(a1, b1);
        assert_ne!(a2, b2);
    }

    #[test]
    fn block_and_tail_interact() {
        // Inputs sharing a 16-byte prefix but different tails must differ,
        // and inputs sharing a tail but different blocks must differ.
        let h = Murmur3_128::new(42);
        let a = h.hash128(b"0123456789abcdefTAIL");
        let b = h.hash128(b"0123456789abcdefLIAT");
        let c = h.hash128(b"fedcba9876543210TAIL");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
