//! Vectorized word kernels: runtime-dispatched scan primitives over the
//! packed little-endian byte buffer.
//!
//! Every hot path in the sketch stack — merge run-skipping, nonzero
//! iteration, emptiness checks — reduces to one of three primitives over
//! 64-bit words of the buffer:
//!
//! * classifying word *pairs* into equal / zero-incoming / differing runs
//!   ([`RunCursor`]),
//! * classifying single words into zero / nonzero runs ([`ZeroRuns`]),
//! * testing a whole buffer for zero ([`is_all_zero`]).
//!
//! Each primitive exists in three implementations selected by [`Kernel`]:
//!
//! | kernel   | technique                                               |
//! |----------|---------------------------------------------------------|
//! | `scalar` | one word at a time — the reference implementation       |
//! | `swar`   | 4×-unrolled portable SWAR block masks (branch per block)|
//! | `avx2`   | `_mm256_cmpeq_epi64` + `movemask` (x86-64, detected at runtime) |
//!
//! # Bit-identity contract
//!
//! All kernels are **observationally identical**: for any input buffer(s),
//! the set of `(index, value)` pairs visited, the zero verdicts, and —
//! through the consumers in `exaloglog` — the merged register arrays are
//! bit-for-bit equal to the scalar reference. Kernels may partition the
//! buffer into *runs* differently (block granularity differs), but never
//! in a way an observer of the visited fields can distinguish. This
//! contract is enforced by `tests/proptest_kernels.rs` across widths
//! 1..=64, including fields straddling run boundaries.
//!
//! # Selection
//!
//! [`active`] picks the kernel once per process via [`OnceLock`]: the
//! fastest supported kernel by default (`avx2` where detected, else
//! `swar`), overridable with the `ELL_KERNEL=scalar|swar|avx2` environment
//! variable. Requesting `avx2` on hardware without it silently degrades to
//! `swar`, so test matrices can set it unconditionally — but an
//! *unrecognized* name panics on first use, so a typo fails the run
//! instead of quietly measuring the default kernel. Benchmarks and
//! tests can instead pass an explicit [`Kernel`] to the `*_with` entry
//! points to compare kernels inside one process.

use std::sync::OnceLock;

use crate::mask;

/// Words per SWAR/AVX2 block: 4 × 64 bits = one 256-bit vector.
const BLOCK: usize = 4;

// ---------------------------------------------------------------------
// Kernel selection.
// ---------------------------------------------------------------------

/// A word-scan implementation. See the [module docs](self) for the
/// dispatch table and the bit-identity contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Word-at-a-time reference implementation (always available).
    Scalar,
    /// Portable 4×-unrolled SWAR block masks (always available).
    Swar,
    /// 256-bit AVX2 compares (x86-64 with runtime-detected AVX2 only).
    Avx2,
}

impl Kernel {
    /// The kernel's name as used by `ELL_KERNEL` and bench reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Swar => "swar",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Parses a kernel name (`"scalar"`, `"swar"`, `"avx2"`).
    #[must_use]
    pub fn parse(name: &str) -> Option<Kernel> {
        match name {
            "scalar" => Some(Kernel::Scalar),
            "swar" => Some(Kernel::Swar),
            "avx2" => Some(Kernel::Avx2),
            _ => None,
        }
    }

    /// Whether this kernel can run on the current hardware.
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            Kernel::Scalar | Kernel::Swar => true,
            Kernel::Avx2 => avx2_detected(),
        }
    }

    /// Degrades an unsupported kernel to the closest supported one
    /// (`avx2` → `swar` off AVX2 hardware). Every scan entry point
    /// normalizes its kernel argument, so an [`Kernel::Avx2`] value
    /// constructed on non-AVX2 hardware is safe — it simply runs SWAR.
    #[must_use]
    pub fn normalize(self) -> Kernel {
        if self == Kernel::Avx2 && !avx2_detected() {
            Kernel::Swar
        } else {
            self
        }
    }
}

/// All kernels supported on the current hardware, fastest last.
#[must_use]
pub fn available() -> Vec<Kernel> {
    [Kernel::Scalar, Kernel::Swar, Kernel::Avx2]
        .into_iter()
        .filter(|k| k.is_supported())
        .collect()
}

#[inline]
fn avx2_detected() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

static ACTIVE: OnceLock<Kernel> = OnceLock::new();

/// The process-wide kernel, selected once on first use: the `ELL_KERNEL`
/// environment variable if set to a recognized name (normalized to the
/// hardware), otherwise `avx2` where detected and `swar` elsewhere.
#[must_use]
pub fn active() -> Kernel {
    *ACTIVE.get_or_init(select_from_env)
}

/// Pins the process-wide kernel before first use (e.g. from a benchmark's
/// `--kernel` flag). The request is normalized to the hardware; returns
/// the kernel actually pinned, or `Err` with the already-active kernel if
/// selection has happened and disagrees.
pub fn force(kernel: Kernel) -> Result<Kernel, Kernel> {
    let k = kernel.normalize();
    match ACTIVE.set(k) {
        Ok(()) => Ok(k),
        Err(_) => {
            let current = active();
            if current == k {
                Ok(k)
            } else {
                Err(current)
            }
        }
    }
}

fn select_from_env() -> Kernel {
    match std::env::var("ELL_KERNEL") {
        Ok(name) => kernel_from_env_name(&name).normalize(),
        Err(_) => default_kernel(),
    }
}

/// Resolves an `ELL_KERNEL` value to a kernel.
///
/// # Panics
///
/// Panics on an unrecognized name: a misconfigured run (a CI matrix
/// typo, a stale script) must fail loudly rather than silently measure
/// the default kernel, which is what the warn-and-continue fallback
/// this replaced allowed.
fn kernel_from_env_name(name: &str) -> Kernel {
    match Kernel::parse(name) {
        Some(k) => k,
        None => panic!("ELL_KERNEL={name:?} is not one of scalar|swar|avx2"),
    }
}

fn default_kernel() -> Kernel {
    if avx2_detected() {
        Kernel::Avx2
    } else {
        Kernel::Swar
    }
}

// ---------------------------------------------------------------------
// Borrowed bulk word view.
// ---------------------------------------------------------------------

/// A borrowed view of a byte buffer as zero-padded little-endian 64-bit
/// words. The hot path is a single bounds check plus an unaligned 8-byte
/// load — no byte-copy into a stack buffer, which is what the historical
/// `PackedArray::word` did on every call.
#[derive(Debug, Clone, Copy)]
pub struct WordView<'a> {
    bytes: &'a [u8],
    n_words: usize,
}

impl<'a> WordView<'a> {
    /// Wraps a byte buffer. The final word of a buffer whose length is not
    /// a multiple of 8 reads zero-padded.
    #[inline]
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        WordView {
            bytes,
            n_words: bytes.len().div_ceil(8),
        }
    }

    /// Number of 64-bit words covering the buffer.
    #[inline]
    #[must_use]
    pub fn word_count(self) -> usize {
        self.n_words
    }

    /// The underlying byte buffer.
    #[inline]
    #[must_use]
    pub fn as_bytes(self) -> &'a [u8] {
        self.bytes
    }

    /// Reads word `w` (little-endian, zero-padded at the buffer tail).
    ///
    /// # Panics
    ///
    /// Panics if `w >= word_count()`.
    #[inline]
    #[must_use]
    pub fn word(self, w: usize) -> u64 {
        let start = w * 8;
        if let Some(chunk) = self.bytes.get(start..start + 8) {
            u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))
        } else {
            assert!(
                w < self.n_words,
                "word {w} out of bounds ({} words)",
                self.n_words
            );
            let tail = &self.bytes[start..];
            let mut buf = [0u8; 8];
            buf[..tail.len()].copy_from_slice(tail);
            u64::from_le_bytes(buf)
        }
    }
}

/// Loads a full 4-word block starting at byte `byte0` (which must leave
/// 32 bytes in bounds).
#[inline]
fn load4(bytes: &[u8], byte0: usize) -> [u64; 4] {
    let s: &[u8; 32] = bytes[byte0..byte0 + 32].try_into().expect("32-byte block");
    [
        u64::from_le_bytes(s[0..8].try_into().expect("8-byte chunk")),
        u64::from_le_bytes(s[8..16].try_into().expect("8-byte chunk")),
        u64::from_le_bytes(s[16..24].try_into().expect("8-byte chunk")),
        u64::from_le_bytes(s[24..32].try_into().expect("8-byte chunk")),
    ]
}

/// Branchless "is nonzero" bit: 1 if `x != 0`, else 0.
#[inline]
fn nonzero_bit(x: u64) -> u32 {
    ((x | x.wrapping_neg()) >> 63) as u32
}

// ---------------------------------------------------------------------
// AVX2 block-mask producers (the only unsafe code in the crate).
// ---------------------------------------------------------------------

/// 256-bit compare kernels. Bounds are enforced here with safe slice
/// indexing; feature availability is guaranteed by [`Kernel::normalize`],
/// which every scan entry point applies before an `Avx2` value can reach
/// this module.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_code)]

    use core::arch::x86_64::{
        __m256i, _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_loadu_si256, _mm256_movemask_pd,
        _mm256_or_si256, _mm256_setzero_si256, _mm256_testz_si256,
    };

    /// Per-word-pair (equal, zero-incoming) masks for one 4-word block.
    /// Bit `j` of the first mask is `a[j] == b[j]`; of the second,
    /// `b[j] == 0`.
    #[inline]
    pub(super) fn pair_masks(a: &[u8], b: &[u8], byte0: usize) -> (u32, u32) {
        // The intrinsics below read exactly the 32 bytes holding words
        // [byte0/8, byte0/8 + 4) of both `WordView`s; the dispatcher
        // must never hand us a block that overhangs either buffer.
        debug_assert!(
            byte0 + 32 <= a.len() && byte0 + 32 <= b.len(),
            "AVX2 block read [{byte0}, {}) exceeds a WordView byte length ({}, {})",
            byte0 + 32,
            a.len(),
            b.len()
        );
        let a32: &[u8; 32] = a[byte0..byte0 + 32].try_into().expect("32-byte block");
        let b32: &[u8; 32] = b[byte0..byte0 + 32].try_into().expect("32-byte block");
        // SAFETY: both pointers reference 32 in-bounds bytes (checked by
        // the slice conversions above); `loadu` has no alignment
        // requirement; AVX2 availability is guaranteed by kernel
        // normalization (see module docs).
        unsafe {
            let va = _mm256_loadu_si256(a32.as_ptr().cast::<__m256i>());
            let vb = _mm256_loadu_si256(b32.as_ptr().cast::<__m256i>());
            let eq = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb)));
            let zero = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
                vb,
                _mm256_setzero_si256(),
            )));
            (eq as u32, zero as u32)
        }
    }

    /// Per-word zero mask for one 4-word block: bit `j` is `v[j] == 0`.
    #[inline]
    pub(super) fn zero_mask(v: &[u8], byte0: usize) -> u32 {
        // Same contract as `pair_masks`: the load covers exactly the 32
        // bytes of one in-bounds 4-word block of the `WordView`.
        debug_assert!(
            byte0 + 32 <= v.len(),
            "AVX2 block read [{byte0}, {}) exceeds the WordView byte length ({})",
            byte0 + 32,
            v.len()
        );
        let v32: &[u8; 32] = v[byte0..byte0 + 32].try_into().expect("32-byte block");
        // SAFETY: 32 in-bounds bytes; unaligned load; AVX2 guaranteed by
        // kernel normalization.
        unsafe {
            let vv = _mm256_loadu_si256(v32.as_ptr().cast::<__m256i>());
            _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(
                vv,
                _mm256_setzero_si256(),
            ))) as u32
        }
    }

    /// Whether every 32-byte block of `chunks` is zero.
    #[inline]
    pub(super) fn all_zero_blocks(chunks: core::slice::ChunksExact<'_, u8>) -> bool {
        // SAFETY: each chunk is exactly 32 in-bounds bytes; unaligned
        // loads; AVX2 guaranteed by kernel normalization.
        unsafe {
            let mut acc = _mm256_setzero_si256();
            for c in chunks {
                acc = _mm256_or_si256(acc, _mm256_loadu_si256(c.as_ptr().cast::<__m256i>()));
            }
            _mm256_testz_si256(acc, acc) == 1
        }
    }
}

// ---------------------------------------------------------------------
// Block-mask dispatch.
// ---------------------------------------------------------------------

/// (equal, zero-incoming) masks for the 4-word block starting at word
/// `base`. Out-of-range words report neither equal nor zero; callers
/// clamp run extension to the real word count, so those bits are never
/// observed.
#[inline]
fn pair_block_masks(kernel: Kernel, a: WordView<'_>, b: WordView<'_>, base: usize) -> (u32, u32) {
    let byte0 = base * 8;
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 && byte0 + 32 <= a.bytes.len() && byte0 + 32 <= b.bytes.len() {
        return avx2::pair_masks(a.bytes, b.bytes, byte0);
    }
    let _ = kernel;
    if byte0 + 32 <= a.bytes.len() && byte0 + 32 <= b.bytes.len() {
        let aw = load4(a.bytes, byte0);
        let bw = load4(b.bytes, byte0);
        let eq = (1 ^ nonzero_bit(aw[0] ^ bw[0]))
            | (1 ^ nonzero_bit(aw[1] ^ bw[1])) << 1
            | (1 ^ nonzero_bit(aw[2] ^ bw[2])) << 2
            | (1 ^ nonzero_bit(aw[3] ^ bw[3])) << 3;
        let zero = (1 ^ nonzero_bit(bw[0]))
            | (1 ^ nonzero_bit(bw[1])) << 1
            | (1 ^ nonzero_bit(bw[2])) << 2
            | (1 ^ nonzero_bit(bw[3])) << 3;
        (eq, zero)
    } else {
        let mut eq = 0u32;
        let mut zero = 0u32;
        let end = a.n_words.min(base + BLOCK);
        for (j, w) in (base..end).enumerate() {
            let (x, y) = (a.word(w), b.word(w));
            if x == y {
                eq |= 1 << j;
            }
            if y == 0 {
                zero |= 1 << j;
            }
        }
        (eq, zero)
    }
}

/// Zero mask for the 4-word block of `v` starting at word `base`; same
/// out-of-range convention as [`pair_block_masks`].
#[inline]
fn zero_block_mask(kernel: Kernel, v: WordView<'_>, base: usize) -> u32 {
    let byte0 = base * 8;
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 && byte0 + 32 <= v.bytes.len() {
        return avx2::zero_mask(v.bytes, byte0);
    }
    let _ = kernel;
    if byte0 + 32 <= v.bytes.len() {
        let w = load4(v.bytes, byte0);
        (1 ^ nonzero_bit(w[0]))
            | (1 ^ nonzero_bit(w[1])) << 1
            | (1 ^ nonzero_bit(w[2])) << 2
            | (1 ^ nonzero_bit(w[3])) << 3
    } else {
        let mut zero = 0u32;
        let end = v.n_words.min(base + BLOCK);
        for (j, w) in (base..end).enumerate() {
            if v.word(w) == 0 {
                zero |= 1 << j;
            }
        }
        zero
    }
}

// ---------------------------------------------------------------------
// Word-pair run scanning (the merge kernel).
// ---------------------------------------------------------------------

/// Classification of a word pair `(ours, theirs)` during a merge scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunClass {
    /// `ours == theirs`: fields fully inside are unchanged by an
    /// idempotent merge.
    Equal,
    /// `ours != theirs` and `theirs == 0`: the incoming word contributes
    /// nothing to fields fully inside.
    ZeroIncoming,
    /// Differing with nonzero incoming bits: must be merged field-wise.
    Diff,
}

/// A maximal run of consecutive words sharing one [`RunClass`]:
/// words `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// The shared classification.
    pub class: RunClass,
    /// First word of the run.
    pub start: usize,
    /// One past the last word of the run.
    pub end: usize,
}

#[inline]
fn classify(ours: u64, theirs: u64) -> RunClass {
    if ours == theirs {
        RunClass::Equal
    } else if theirs == 0 {
        RunClass::ZeroIncoming
    } else {
        RunClass::Diff
    }
}

#[inline]
fn class_from_bits(eq: u32, zero: u32) -> RunClass {
    if eq & 1 != 0 {
        RunClass::Equal
    } else if zero & 1 != 0 {
        RunClass::ZeroIncoming
    } else {
        RunClass::Diff
    }
}

/// Mask of block lanes whose class matches `class`.
#[inline]
fn class_mask(class: RunClass, eq: u32, zero: u32) -> u32 {
    (match class {
        RunClass::Equal => eq,
        RunClass::ZeroIncoming => !eq & zero,
        RunClass::Diff => !eq & !zero,
    }) & 0xF
}

/// Stateful cursor yielding maximal same-class word runs over a pair of
/// equal-length buffers, loading and classifying every word exactly once
/// per kernel granularity (the historical merge loop classified each
/// run-boundary word twice).
///
/// The cursor takes the views per call rather than borrowing them, so a
/// merge loop can mutate `ours` between runs. Mutations behind the scan
/// position may leave a cached block classification stale; this is sound
/// for monotone merges — see `ExaLogLog::merge_from`, whose skip
/// arguments are per-field and unaffected by boundary-field writes — but
/// callers must pass the same logical buffers on every call.
#[derive(Debug)]
pub struct RunCursor {
    kernel: Kernel,
    w: usize,
    /// Class of word `w`, when it was already loaded while closing the
    /// previous run.
    pending: Option<RunClass>,
    /// Cached block masks (`blk == usize::MAX` means empty).
    blk: usize,
    blk_eq: u32,
    blk_zero: u32,
}

impl RunCursor {
    /// Creates a cursor at word 0. The kernel is normalized to the
    /// hardware (see [`Kernel::normalize`]).
    #[must_use]
    pub fn new(kernel: Kernel) -> Self {
        RunCursor {
            kernel: kernel.normalize(),
            w: 0,
            pending: None,
            blk: usize::MAX,
            blk_eq: 0,
            blk_zero: 0,
        }
    }

    /// Yields the next maximal run, or `None` when the buffers are
    /// exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the two views cover different word counts.
    pub fn next_run(&mut self, ours: WordView<'_>, theirs: WordView<'_>) -> Option<Run> {
        let n = ours.word_count();
        assert_eq!(n, theirs.word_count(), "mismatched merge buffers");
        if self.w >= n {
            return None;
        }
        let start = self.w;
        let class = match self.pending.take() {
            Some(c) => c,
            None => self.class_at(ours, theirs, start),
        };
        let mut e = start + 1;
        if self.kernel == Kernel::Scalar {
            while e < n {
                let c = classify(ours.word(e), theirs.word(e));
                if c != class {
                    self.pending = Some(c);
                    break;
                }
                e += 1;
            }
        } else {
            while e < n {
                let blk = e / BLOCK;
                let (eq, zero) = self.block(ours, theirs, blk);
                let off = e % BLOCK;
                let cont = class_mask(class, eq, zero) >> off;
                let avail = (BLOCK - off).min(n - e);
                let matched = (!cont).trailing_zeros() as usize;
                if matched >= avail {
                    e += avail;
                } else {
                    e += matched;
                    let j = off + matched;
                    self.pending = Some(class_from_bits(eq >> j, zero >> j));
                    break;
                }
            }
        }
        self.w = e;
        Some(Run {
            class,
            start,
            end: e,
        })
    }

    #[inline]
    fn class_at(&mut self, a: WordView<'_>, b: WordView<'_>, w: usize) -> RunClass {
        if self.kernel == Kernel::Scalar {
            classify(a.word(w), b.word(w))
        } else {
            let (eq, zero) = self.block(a, b, w / BLOCK);
            let j = w % BLOCK;
            class_from_bits(eq >> j, zero >> j)
        }
    }

    #[inline]
    fn block(&mut self, a: WordView<'_>, b: WordView<'_>, blk: usize) -> (u32, u32) {
        if self.blk != blk {
            let (eq, zero) = pair_block_masks(self.kernel, a, b, blk * BLOCK);
            self.blk = blk;
            self.blk_eq = eq;
            self.blk_zero = zero;
        }
        (self.blk_eq, self.blk_zero)
    }
}

// ---------------------------------------------------------------------
// Single-buffer zero/nonzero run scanning.
// ---------------------------------------------------------------------

/// A maximal run of consecutive all-zero or not-all-zero words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroRun {
    /// Whether every word in the run is zero.
    pub zero: bool,
    /// First word of the run.
    pub start: usize,
    /// One past the last word of the run.
    pub end: usize,
}

/// Iterator over maximal zero / nonzero word runs of one buffer, loading
/// and classifying each word exactly once per kernel granularity.
#[derive(Debug)]
pub struct ZeroRuns<'a> {
    view: WordView<'a>,
    kernel: Kernel,
    w: usize,
    pending: Option<bool>,
    blk: usize,
    blk_zero: u32,
}

impl<'a> ZeroRuns<'a> {
    /// Creates the scanner. The kernel is normalized to the hardware.
    #[must_use]
    pub fn new(view: WordView<'a>, kernel: Kernel) -> Self {
        ZeroRuns {
            view,
            kernel: kernel.normalize(),
            w: 0,
            pending: None,
            blk: usize::MAX,
            blk_zero: 0,
        }
    }

    #[inline]
    fn zero_at(&mut self, w: usize) -> bool {
        if self.kernel == Kernel::Scalar {
            self.view.word(w) == 0
        } else {
            let zero = self.block(w / BLOCK);
            zero >> (w % BLOCK) & 1 != 0
        }
    }

    #[inline]
    fn block(&mut self, blk: usize) -> u32 {
        if self.blk != blk {
            self.blk_zero = zero_block_mask(self.kernel, self.view, blk * BLOCK);
            self.blk = blk;
        }
        self.blk_zero
    }
}

impl Iterator for ZeroRuns<'_> {
    type Item = ZeroRun;

    fn next(&mut self) -> Option<ZeroRun> {
        let n = self.view.word_count();
        if self.w >= n {
            return None;
        }
        let start = self.w;
        let zero = match self.pending.take() {
            Some(z) => z,
            None => self.zero_at(start),
        };
        let mut e = start + 1;
        if self.kernel == Kernel::Scalar {
            while e < n {
                let z = self.view.word(e) == 0;
                if z != zero {
                    self.pending = Some(z);
                    break;
                }
                e += 1;
            }
        } else {
            while e < n {
                let blk = e / BLOCK;
                let zmask = self.block(blk);
                let off = e % BLOCK;
                let cont = (if zero { zmask } else { !zmask & 0xF }) >> off;
                let avail = (BLOCK - off).min(n - e);
                let matched = (!cont).trailing_zeros() as usize;
                if matched >= avail {
                    e += avail;
                } else {
                    e += matched;
                    self.pending = Some(zmask >> (off + matched) & 1 != 0);
                    break;
                }
            }
        }
        self.w = e;
        Some(ZeroRun {
            zero,
            start,
            end: e,
        })
    }
}

// ---------------------------------------------------------------------
// Whole-buffer zero test.
// ---------------------------------------------------------------------

/// Returns true if every byte of `bytes` is zero, scanning 32 bytes per
/// step under the SWAR and AVX2 kernels.
#[must_use]
pub fn is_all_zero(bytes: &[u8], kernel: Kernel) -> bool {
    match kernel.normalize() {
        Kernel::Scalar => bytes.iter().all(|&b| b == 0),
        Kernel::Swar => {
            let mut chunks = bytes.chunks_exact(32);
            for c in &mut chunks {
                let w = load4(c, 0);
                if w[0] | w[1] | w[2] | w[3] != 0 {
                    return false;
                }
            }
            chunks.remainder().iter().all(|&b| b == 0)
        }
        Kernel::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                let chunks = bytes.chunks_exact(32);
                let tail = chunks.remainder();
                avx2::all_zero_blocks(chunks) && tail.iter().all(|&b| b == 0)
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                unreachable!("Avx2 normalizes to Swar off x86-64")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Width-specialized lane extraction.
// ---------------------------------------------------------------------

/// Calls `visit(lane, value)` for every nonzero `width`-bit lane of
/// `word`, in ascending lane order, using mask-and-`trailing_zeros`
/// extraction instead of one shifted decode per lane.
///
/// Valid for widths that divide 64 (1, 2, 4, 8, 16, 32, 64) — the layouts
/// where fields never straddle a word boundary — and for wider layouts
/// whose trailing padding lanes are zero (e.g. two 28-bit atomic
/// registers per word): a zero lane is simply never visited.
#[inline]
pub fn for_each_nonzero_lane(word: u64, width: u32, mut visit: impl FnMut(usize, u64)) {
    let field = mask(width);
    let mut bits = word;
    while bits != 0 {
        let lane = (bits.trailing_zeros() / width) as usize;
        let shift = lane as u32 * width;
        visit(lane, (word >> shift) & field);
        bits &= !(field << shift);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words_of(v: &[u64]) -> Vec<u8> {
        v.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    fn runs(kernel: Kernel, a: &[u64], b: &[u64]) -> Vec<Run> {
        let (ab, bb) = (words_of(a), words_of(b));
        let mut cursor = RunCursor::new(kernel);
        let mut out = Vec::new();
        while let Some(r) = cursor.next_run(WordView::new(&ab), WordView::new(&bb)) {
            out.push(r);
        }
        out
    }

    #[test]
    fn kernel_names_roundtrip() {
        for k in [Kernel::Scalar, Kernel::Swar, Kernel::Avx2] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse("neon"), None);
        assert!(Kernel::Scalar.is_supported());
        assert!(Kernel::Swar.is_supported());
        assert!(available().contains(&Kernel::Swar));
        assert_eq!(Kernel::Swar.normalize(), Kernel::Swar);
    }

    #[test]
    fn env_kernel_resolves_known_names() {
        assert_eq!(kernel_from_env_name("scalar"), Kernel::Scalar);
        assert_eq!(kernel_from_env_name("swar"), Kernel::Swar);
        assert_eq!(kernel_from_env_name("avx2"), Kernel::Avx2);
    }

    #[test]
    #[should_panic(expected = "ELL_KERNEL=\"sse9\" is not one of scalar|swar|avx2")]
    fn env_kernel_unknown_name_fails_loudly() {
        let _ = kernel_from_env_name("sse9");
    }

    #[test]
    fn word_view_pads_tail() {
        let bytes = [0xff, 0x01, 0x02];
        let v = WordView::new(&bytes);
        assert_eq!(v.word_count(), 1);
        assert_eq!(v.word(0), 0x0002_01ff);
        let v8 = WordView::new(&[0u8; 8]);
        assert_eq!(v8.word_count(), 1);
        assert_eq!(v8.word(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn word_view_bounds_checked() {
        let bytes = [1u8, 2, 3];
        let _ = WordView::new(&bytes).word(1);
    }

    #[test]
    fn run_partitions_cover_and_agree_on_class() {
        // The kernels may split runs differently but every word's class
        // must match the scalar classification at that word.
        let a: Vec<u64> = (0..23)
            .map(|i| if i % 5 == 0 { 0 } else { i as u64 })
            .collect();
        let b: Vec<u64> = (0..23)
            .map(|i| match i % 3 {
                0 => 0,
                1 => i as u64,
                _ => 99,
            })
            .collect();
        for kernel in available() {
            let rs = runs(kernel, &a, &b);
            let mut covered = 0usize;
            for r in &rs {
                assert_eq!(r.start, covered, "{kernel:?} runs must be contiguous");
                assert!(r.end > r.start);
                for w in r.start..r.end {
                    assert_eq!(r.class, classify(a[w], b[w]), "{kernel:?} word {w}");
                }
                covered = r.end;
            }
            assert_eq!(covered, a.len(), "{kernel:?} runs must cover the buffer");
        }
        // Scalar runs are maximal by construction; every kernel's run set,
        // merged over adjacent same-class runs, must equal it.
        let canonical = runs(Kernel::Scalar, &a, &b);
        for kernel in available() {
            let mut merged: Vec<Run> = Vec::new();
            for r in runs(kernel, &a, &b) {
                match merged.last_mut() {
                    Some(prev) if prev.class == r.class && prev.end == r.start => prev.end = r.end,
                    _ => merged.push(r),
                }
            }
            assert_eq!(merged, canonical, "{kernel:?}");
        }
    }

    #[test]
    fn zero_runs_match_scalar() {
        let v: Vec<u64> = [0, 0, 0, 1, 2, 0, 0, 0, 0, 0, 3, 0, 4, 5, 6, 7, 0]
            .into_iter()
            .collect();
        let bytes = words_of(&v);
        let canonical: Vec<ZeroRun> =
            ZeroRuns::new(WordView::new(&bytes), Kernel::Scalar).collect();
        for kernel in available() {
            let mut merged: Vec<ZeroRun> = Vec::new();
            for r in ZeroRuns::new(WordView::new(&bytes), kernel) {
                match merged.last_mut() {
                    Some(prev) if prev.zero == r.zero && prev.end == r.start => prev.end = r.end,
                    _ => merged.push(r),
                }
            }
            assert_eq!(merged, canonical, "{kernel:?}");
        }
    }

    #[test]
    fn is_all_zero_all_kernels() {
        for len in [0usize, 1, 7, 8, 31, 32, 33, 64, 100] {
            let zeros = vec![0u8; len];
            for kernel in available() {
                assert!(is_all_zero(&zeros, kernel), "{kernel:?} len {len}");
                if len > 0 {
                    for poke in [0, len / 2, len - 1] {
                        let mut v = zeros.clone();
                        v[poke] = 0x80;
                        assert!(!is_all_zero(&v, kernel), "{kernel:?} len {len} poke {poke}");
                    }
                }
            }
        }
    }

    #[test]
    fn lane_extraction_matches_shift_decode() {
        for width in [1u32, 2, 4, 8, 16, 32, 64] {
            let lanes = (64 / width) as usize;
            let word = 0x8040_2010_0804_0201u64;
            let mut seen = Vec::new();
            for_each_nonzero_lane(word, width, |lane, v| seen.push((lane, v)));
            let want: Vec<(usize, u64)> = (0..lanes)
                .map(|l| (l, (word >> (l as u32 * width)) & mask(width)))
                .filter(|&(_, v)| v != 0)
                .collect();
            assert_eq!(seen, want, "width {width}");
        }
        for_each_nonzero_lane(0, 8, |_, _| panic!("no lanes in a zero word"));
    }

    #[test]
    fn force_after_init_reports_active() {
        let first = active();
        assert_eq!(force(first), Ok(first));
    }
}
