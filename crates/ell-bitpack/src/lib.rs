//! Densely packed arrays of fixed-width bit fields.
//!
//! Probabilistic sketches such as HyperLogLog and ExaLogLog store their state
//! in `m` registers of `w` bits each, packed back-to-back into a single byte
//! array so that the whole state can be serialized with a `memcpy` and merged
//! in place without allocations. This crate provides that storage substrate:
//!
//! * [`PackedArray`] — an array of `len` fields, each `width` bits wide
//!   (1 ≤ `width` ≤ 64), packed little-endian into a contiguous byte buffer
//!   of exactly `ceil(len * width / 8)` bytes.
//!
//! The bit layout is *little-endian within the buffer*: field `i` occupies
//! bits `[i*width, (i+1)*width)` of the buffer, where bit `b` of the buffer
//! is bit `b % 8` of byte `b / 8`. This layout means byte-aligned widths
//! (8, 16, 24, 32, …) degenerate to plain byte slices, and the serialized
//! form is identical on all platforms.
//!
//! # Width-specialized backends
//!
//! Because byte-aligned fields are plain byte slices under this layout,
//! [`PackedArray`] picks a storage *backend* at construction time: widths
//! 8, 16, 24, 32 and 64 read and write fields with direct one/two/three/
//! four/eight-byte little-endian loads and stores, while every other
//! width falls back to the generic shifted-window path. The backend is an
//! access strategy only — the byte buffer, and therefore the serialized
//! form, is bit-identical across backends (enforced by property tests),
//! and equality/hashing ignore it. [`PackedArray::new_generic`] forces
//! the fallback path so benchmarks and tests can compare both.
//!
//! # Bulk word accessors and kernels
//!
//! [`PackedArray::words`] exposes the buffer as a borrowed view of
//! zero-padded 64-bit little-endian words ([`kernels::WordView`]).
//! Sketch hot paths use it to skip whole runs of empty or identical
//! registers per comparison instead of per field — see
//! [`PackedArray::for_each_nonzero`]. The run classification itself is
//! performed by the runtime-dispatched scan kernels in [`kernels`]
//! (scalar reference, portable SWAR, AVX2), all property-tested
//! bit-identical.
//!
//! # Example
//!
//! ```
//! use ell_bitpack::PackedArray;
//!
//! // 4 registers of 28 bits each (the optimal ExaLogLog(2,20) width):
//! // two registers pack into exactly 7 bytes.
//! let mut regs = PackedArray::new(28, 4);
//! assert_eq!(regs.as_bytes().len(), 14);
//! regs.set(2, 0x0abc_def1);
//! assert_eq!(regs.get(2), 0x0abc_def1);
//! assert_eq!(regs.get(1), 0);
//! ```

// `deny` rather than `forbid`: the AVX2 intrinsics in `kernels::avx2`
// carry a scoped `#![allow(unsafe_code)]`; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

pub mod kernels;

use kernels::{Kernel, WordView, ZeroRuns};

/// Maximum supported field width in bits.
pub const MAX_WIDTH: u32 = 64;

/// An array of `len` fields of `width` bits each, packed into a byte buffer.
///
/// See the [crate-level documentation](crate) for the bit layout and the
/// width-specialized access backends.
pub struct PackedArray {
    bits: Vec<u8>,
    width: u32,
    len: usize,
    backend: Backend,
}

impl Clone for PackedArray {
    fn clone(&self) -> Self {
        PackedArray {
            bits: self.bits.clone(),
            width: self.width,
            len: self.len,
            backend: self.backend,
        }
    }

    /// Overwrites `self` in place, reusing its buffer allocation when the
    /// capacity suffices — the hot shape for scratch arrays that are
    /// repeatedly reset to a template state.
    fn clone_from(&mut self, source: &Self) {
        self.bits.clone_from(&source.bits);
        self.width = source.width;
        self.len = source.len;
        self.backend = source.backend;
    }
}

/// Two arrays are equal iff they hold the same fields at the same width;
/// the access backend (a pure performance choice) does not participate.
impl PartialEq for PackedArray {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width && self.len == other.len && self.bits == other.bits
    }
}

impl Eq for PackedArray {}

impl core::hash::Hash for PackedArray {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self.width.hash(state);
        self.len.hash(state);
        self.bits.hash(state);
    }
}

/// Field-access strategy, chosen once at construction from the width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Backend {
    /// Arbitrary widths: shifted 128-bit window reads/writes.
    Generic,
    /// width = 8: each field is one byte.
    W8,
    /// width = 16: two-byte little-endian fields.
    W16,
    /// width = 24: three-byte little-endian fields.
    W24,
    /// width = 32: four-byte little-endian fields.
    W32,
    /// width = 64: eight-byte little-endian fields.
    W64,
}

impl Backend {
    #[inline]
    fn for_width(width: u32) -> Backend {
        match width {
            8 => Backend::W8,
            16 => Backend::W16,
            24 => Backend::W24,
            32 => Backend::W32,
            64 => Backend::W64,
            _ => Backend::Generic,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Backend::Generic => "generic",
            Backend::W8 => "u8",
            Backend::W16 => "u16",
            Backend::W24 => "u24",
            Backend::W32 => "u32",
            Backend::W64 => "u64",
        }
    }
}

/// Errors returned when constructing a [`PackedArray`] from raw parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedArrayError {
    /// The requested width was 0 or exceeded [`MAX_WIDTH`].
    InvalidWidth {
        /// The offending width.
        width: u32,
    },
    /// The byte buffer length does not match `ceil(len * width / 8)`.
    LengthMismatch {
        /// Bytes expected from `(width, len)`.
        expected: usize,
        /// Bytes actually provided.
        actual: usize,
    },
    /// Unused trailing bits in the last byte were not zero.
    NonZeroPadding,
}

impl fmt::Display for PackedArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackedArrayError::InvalidWidth { width } => {
                write!(f, "field width {width} out of range 1..={MAX_WIDTH}")
            }
            PackedArrayError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer holds {actual} bytes but layout requires {expected}"
                )
            }
            PackedArrayError::NonZeroPadding => {
                write!(f, "unused trailing bits of the last byte must be zero")
            }
        }
    }
}

impl std::error::Error for PackedArrayError {}

/// Number of bytes needed for `len` fields of `width` bits.
#[inline]
pub const fn bytes_for(width: u32, len: usize) -> usize {
    (len * width as usize).div_ceil(8)
}

impl PackedArray {
    /// Creates a zero-initialized array of `len` fields of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than [`MAX_WIDTH`].
    #[must_use]
    pub fn new(width: u32, len: usize) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "field width {width} out of range 1..={MAX_WIDTH}"
        );
        PackedArray {
            bits: vec![0u8; bytes_for(width, len)],
            width,
            len,
            backend: Backend::for_width(width),
        }
    }

    /// Creates a zero-initialized array that is pinned to the generic
    /// shifted-window access path even when the width is byte-aligned.
    ///
    /// The stored bytes — and therefore serialization, equality and
    /// hashing — are identical to [`PackedArray::new`]; only the access
    /// strategy differs. This exists so benchmarks can measure the
    /// specialized backends against the generic path and so property
    /// tests can prove the two bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than [`MAX_WIDTH`].
    #[must_use]
    pub fn new_generic(width: u32, len: usize) -> Self {
        let mut a = Self::new(width, len);
        a.backend = Backend::Generic;
        a
    }

    /// Pins this array to the generic access path (see
    /// [`PackedArray::new_generic`]). The contents are unchanged.
    pub fn force_generic(&mut self) {
        self.backend = Backend::Generic;
    }

    /// The name of the active access backend (`"u8"`, `"u16"`, `"u24"`,
    /// `"u32"`, `"u64"`, or `"generic"`), for diagnostics and benchmark
    /// reports.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Reconstructs an array from its serialized byte form.
    ///
    /// The buffer must be exactly `ceil(len * width / 8)` bytes and any
    /// unused high bits of the final byte must be zero (as produced by
    /// [`PackedArray::as_bytes`]); otherwise an error is returned. This
    /// strictness turns many accidental corruptions into hard errors.
    pub fn from_bytes(width: u32, len: usize, bytes: &[u8]) -> Result<Self, PackedArrayError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(PackedArrayError::InvalidWidth { width });
        }
        // Checked layout computation: an attacker-controlled `len` (e.g. a
        // corrupted length field in a serialized sketch) must surface as a
        // LengthMismatch, not an arithmetic overflow.
        let expected = match len.checked_mul(width as usize).map(|bits| bits.div_ceil(8)) {
            Some(expected) => expected,
            None => {
                return Err(PackedArrayError::LengthMismatch {
                    expected: usize::MAX,
                    actual: bytes.len(),
                })
            }
        };
        if bytes.len() != expected {
            return Err(PackedArrayError::LengthMismatch {
                expected,
                actual: bytes.len(),
            });
        }
        let used_bits = len * width as usize;
        let trailing = expected * 8 - used_bits;
        if trailing > 0 {
            let last = bytes[expected - 1];
            if last >> (8 - trailing) != 0 {
                return Err(PackedArrayError::NonZeroPadding);
            }
        }
        Ok(PackedArray {
            bits: bytes.to_vec(),
            width,
            len,
            backend: Backend::for_width(width),
        })
    }

    /// Field width in bits.
    #[inline]
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of fields.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array holds zero fields.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing byte buffer; also the canonical serialized form.
    #[inline]
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Mask with the low `width` bits set.
    #[inline]
    #[must_use]
    pub fn value_mask(&self) -> u64 {
        mask(self.width)
    }

    /// Reads field `i` through the width-specialized backend (direct
    /// byte-aligned loads for widths 8/16/24/32/64, the generic shifted
    /// window otherwise).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        match self.backend {
            Backend::W8 => u64::from(self.bits[i]),
            Backend::W16 => {
                let b = &self.bits[2 * i..2 * i + 2];
                u64::from(u16::from_le_bytes([b[0], b[1]]))
            }
            Backend::W24 => {
                let b = &self.bits[3 * i..3 * i + 3];
                u64::from(b[0]) | u64::from(b[1]) << 8 | u64::from(b[2]) << 16
            }
            Backend::W32 => {
                let b = &self.bits[4 * i..4 * i + 4];
                u64::from(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            Backend::W64 => {
                let b: [u8; 8] = self.bits[8 * i..8 * i + 8]
                    .try_into()
                    .expect("8-byte field slice");
                u64::from_le_bytes(b)
            }
            Backend::Generic => self.get_generic(i),
        }
    }

    #[inline]
    fn get_generic(&self, i: usize) -> u64 {
        let bit = i * self.width as usize;
        let byte = bit >> 3;
        let shift = (bit & 7) as u32;
        // A field of up to 64 bits starting at an arbitrary bit offset spans
        // at most 9 bytes; a 16-byte little-endian window covers it. The
        // window is clipped at the buffer end (missing bytes read as zero,
        // which is correct because those bits are past the last field).
        let window = self.window16(byte);
        ((window >> shift) as u64) & mask(self.width)
    }

    /// Writes field `i` through the width-specialized backend.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` or if `value` does not fit in `width` bits.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        assert!(
            value <= mask(self.width),
            "value {value:#x} does not fit in {} bits",
            self.width
        );
        match self.backend {
            Backend::W8 => self.bits[i] = value as u8,
            Backend::W16 => {
                self.bits[2 * i..2 * i + 2].copy_from_slice(&(value as u16).to_le_bytes());
            }
            Backend::W24 => {
                self.bits[3 * i..3 * i + 3].copy_from_slice(&(value as u32).to_le_bytes()[..3]);
            }
            Backend::W32 => {
                self.bits[4 * i..4 * i + 4].copy_from_slice(&(value as u32).to_le_bytes());
            }
            Backend::W64 => {
                self.bits[8 * i..8 * i + 8].copy_from_slice(&value.to_le_bytes());
            }
            Backend::Generic => self.set_generic(i, value),
        }
    }

    #[inline]
    fn set_generic(&mut self, i: usize, value: u64) {
        let bit = i * self.width as usize;
        let byte = bit >> 3;
        let shift = (bit & 7) as u32;
        let end = (self.bits.len()).min(byte + 16);
        let span = end - byte;
        let mut window = [0u8; 16];
        window[..span].copy_from_slice(&self.bits[byte..end]);
        let mut w = u128::from_le_bytes(window);
        w &= !((mask(self.width) as u128) << shift);
        w |= (value as u128) << shift;
        let out = w.to_le_bytes();
        self.bits[byte..end].copy_from_slice(&out[..span]);
    }

    /// Iterates over all field values in index order.
    ///
    /// The returned iterator dispatches on the backend once: byte-aligned
    /// widths stream the buffer in fixed-size chunks instead of paying a
    /// bounds check and window read per field.
    pub fn iter(&self) -> PackedIter<'_> {
        PackedIter(match self.backend {
            Backend::W8 => PackedIterInner::W8(self.bits.iter()),
            Backend::W16 => PackedIterInner::W16(self.bits.chunks_exact(2)),
            Backend::W24 => PackedIterInner::W24(self.bits.chunks_exact(3)),
            Backend::W32 => PackedIterInner::W32(self.bits.chunks_exact(4)),
            Backend::W64 => PackedIterInner::W64(self.bits.chunks_exact(8)),
            Backend::Generic => PackedIterInner::Generic { arr: self, next: 0 },
        })
    }

    /// Resets every field to zero without reallocating.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Returns true if every field is zero, scanning 32 bytes per step
    /// through the active word kernel (see [`kernels::active`]).
    #[must_use]
    pub fn is_all_zero(&self) -> bool {
        kernels::is_all_zero(&self.bits, kernels::active())
    }

    /// Number of 64-bit words covering the buffer (the last word is
    /// zero-padded). This is the granularity of the bulk scans below.
    #[inline]
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.bits.len().div_ceil(8)
    }

    /// Borrowed view of the buffer as zero-padded 64-bit little-endian
    /// words — the input shape of the scan kernels in [`kernels`]. Each
    /// access is one bounds check plus an unaligned load, replacing the
    /// historical per-call byte-copy of [`PackedArray::word`].
    #[inline]
    #[must_use]
    pub fn words(&self) -> WordView<'_> {
        WordView::new(&self.bits)
    }

    /// Reads the `w`-th 64-bit little-endian word of the buffer. Bytes
    /// past the end of the buffer read as zero, so the final word of a
    /// non-multiple-of-8 buffer is zero-padded — two arrays with equal
    /// contents always compare word-equal.
    ///
    /// # Panics
    ///
    /// Panics if `w >= word_count()`.
    #[inline]
    #[must_use]
    pub fn word(&self, w: usize) -> u64 {
        self.words().word(w)
    }

    /// Calls `visit(i, value)` for every nonzero field, in index order,
    /// using the active scan kernel (see [`kernels::active`]).
    pub fn for_each_nonzero(&self, visit: impl FnMut(usize, u64)) {
        self.for_each_nonzero_with(kernels::active(), visit);
    }

    /// [`PackedArray::for_each_nonzero`] under an explicit [`Kernel`], so
    /// benchmarks and property tests can compare kernels in one process.
    ///
    /// Widths dividing 64 never straddle a word boundary, so nonzero
    /// words decode by mask-and-`trailing_zeros` lane extraction and runs
    /// of empty fields cost one block comparison. Other widths classify
    /// zero/nonzero word runs through the kernel and decode fields
    /// straddling a run boundary individually (their other word may carry
    /// bits), so the visit set is exact for every width.
    pub fn for_each_nonzero_with(&self, kernel: Kernel, mut visit: impl FnMut(usize, u64)) {
        let width = self.width as usize;
        let view = self.words();
        if self.width <= 32 && 64 % width == 0 {
            // Lane-extraction path: fields are word-aligned lanes.
            let lanes_per_word = 64 / width;
            for run in ZeroRuns::new(view, kernel) {
                if run.zero {
                    continue;
                }
                for w in run.start..run.end {
                    let base = w * lanes_per_word;
                    kernels::for_each_nonzero_lane(view.word(w), self.width, |lane, v| {
                        debug_assert!(base + lane < self.len, "nonzero padding lane");
                        visit(base + lane, v);
                    });
                }
            }
            return;
        }
        if self.width == 64 {
            for run in ZeroRuns::new(view, kernel) {
                if run.zero {
                    continue;
                }
                for w in run.start..run.end {
                    let v = view.word(w);
                    if v != 0 {
                        visit(w, v);
                    }
                }
            }
            return;
        }
        // Generic path: fields may straddle word boundaries. `next` is
        // the first field index not yet classified by the run scan.
        let mut next = 0usize;
        for run in ZeroRuns::new(view, kernel) {
            let start_bit = run.start * 64;
            let end_bit = run.end * 64;
            if run.zero {
                // Skip fields lying fully inside [start_bit, end_bit);
                // fields straddling into the run from the left are decoded
                // here, ones straddling out of it by the next run.
                let lo = start_bit.div_ceil(width).min(self.len);
                for i in next..lo {
                    let v = self.get(i);
                    if v != 0 {
                        visit(i, v);
                    }
                }
                next = next.max(lo).max((end_bit / width).min(self.len));
            } else {
                // Decode every field starting before end_bit.
                let hi = end_bit.div_ceil(width).min(self.len);
                for i in next..hi {
                    let v = self.get(i);
                    if v != 0 {
                        visit(i, v);
                    }
                }
                next = next.max(hi);
            }
        }
        for i in next..self.len {
            let v = self.get(i);
            if v != 0 {
                visit(i, v);
            }
        }
    }

    #[inline]
    fn window16(&self, byte: usize) -> u128 {
        let end = self.bits.len().min(byte + 16);
        let span = end - byte;
        if span == 16 {
            // Common case: full window available.
            let mut window = [0u8; 16];
            window.copy_from_slice(&self.bits[byte..end]);
            u128::from_le_bytes(window)
        } else {
            let mut window = [0u8; 16];
            window[..span].copy_from_slice(&self.bits[byte..end]);
            u128::from_le_bytes(window)
        }
    }
}

impl fmt::Debug for PackedArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedArray(width={}, len={}, [", self.width, self.len)?;
        for (i, v) in self.iter().enumerate().take(16) {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:#x}")?;
        }
        if self.len > 16 {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

/// Iterator over the field values of a [`PackedArray`]
/// (see [`PackedArray::iter`]).
///
/// Internally one variant per storage backend, chosen once when the
/// iterator is created, so byte-aligned widths decode fields from plain
/// slice chunks with no per-item dispatch beyond a predictable match.
/// The representation is deliberately opaque: the backend set is an
/// implementation detail, not API surface.
#[derive(Debug, Clone)]
pub struct PackedIter<'a>(PackedIterInner<'a>);

#[derive(Debug, Clone)]
enum PackedIterInner<'a> {
    /// 8-bit fields: one byte each.
    W8(core::slice::Iter<'a, u8>),
    /// 16-bit fields: two-byte little-endian chunks.
    W16(core::slice::ChunksExact<'a, u8>),
    /// 24-bit fields: three-byte little-endian chunks.
    W24(core::slice::ChunksExact<'a, u8>),
    /// 32-bit fields: four-byte little-endian chunks.
    W32(core::slice::ChunksExact<'a, u8>),
    /// 64-bit fields: eight-byte little-endian chunks.
    W64(core::slice::ChunksExact<'a, u8>),
    /// Any other width: indexed reads through the generic window path.
    Generic { arr: &'a PackedArray, next: usize },
}

impl Iterator for PackedIter<'_> {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        match &mut self.0 {
            PackedIterInner::W8(it) => it.next().map(|&b| u64::from(b)),
            PackedIterInner::W16(it) => it
                .next()
                .map(|c| u64::from(u16::from_le_bytes([c[0], c[1]]))),
            PackedIterInner::W24(it) => it
                .next()
                .map(|c| u64::from(c[0]) | u64::from(c[1]) << 8 | u64::from(c[2]) << 16),
            PackedIterInner::W32(it) => it
                .next()
                .map(|c| u64::from(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))),
            PackedIterInner::W64(it) => it
                .next()
                .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
            PackedIterInner::Generic { arr, next } => {
                if *next < arr.len {
                    let v = arr.get_generic(*next);
                    *next += 1;
                    Some(v)
                } else {
                    None
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.0 {
            PackedIterInner::W8(it) => it.len(),
            PackedIterInner::W16(it)
            | PackedIterInner::W24(it)
            | PackedIterInner::W32(it)
            | PackedIterInner::W64(it) => it.len(),
            PackedIterInner::Generic { arr, next } => arr.len - next,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for PackedIter<'_> {}

/// Mask with the low `width` bits set (`width` ≤ 64).
#[inline]
#[must_use]
pub const fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let a = PackedArray::new(6, 100);
        assert_eq!(a.len(), 100);
        assert_eq!(a.width(), 6);
        assert_eq!(a.as_bytes().len(), 75); // 600 bits
        assert!(a.iter().all(|v| v == 0));
        assert!(a.is_all_zero());
    }

    #[test]
    fn bytes_for_matches_manual() {
        assert_eq!(bytes_for(6, 4), 3);
        assert_eq!(bytes_for(28, 2), 7);
        assert_eq!(bytes_for(28, 4), 14);
        assert_eq!(bytes_for(1, 9), 2);
        assert_eq!(bytes_for(64, 3), 24);
        assert_eq!(bytes_for(8, 0), 0);
    }

    #[test]
    fn set_get_roundtrip_all_widths() {
        for width in 1..=64u32 {
            let len = 37;
            let mut a = PackedArray::new(width, len);
            let m = mask(width);
            // A pattern that differs per index and exercises high bits.
            for i in 0..len {
                let v = (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)) & m;
                a.set(i, v);
            }
            for i in 0..len {
                let v = (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)) & m;
                assert_eq!(a.get(i), v, "width={width} i={i}");
            }
        }
    }

    #[test]
    fn neighbours_unaffected() {
        for width in [3u32, 5, 7, 11, 13, 28, 31, 33, 63] {
            let mut a = PackedArray::new(width, 9);
            let m = mask(width);
            for i in 0..9 {
                a.set(i, m); // all ones
            }
            a.set(4, 0);
            for i in 0..9 {
                let expect = if i == 4 { 0 } else { m };
                assert_eq!(a.get(i), expect, "width={width} i={i}");
            }
        }
    }

    #[test]
    fn last_field_at_buffer_end() {
        // Width chosen so the final field ends exactly at the buffer edge
        // and also so it does not (padding case).
        let mut a = PackedArray::new(28, 2); // exactly 7 bytes
        a.set(1, mask(28));
        assert_eq!(a.get(1), mask(28));
        let mut b = PackedArray::new(28, 3); // 84 bits -> 11 bytes, 4 bits padding
        b.set(2, mask(28));
        assert_eq!(b.get(2), mask(28));
        assert_eq!(b.as_bytes().len(), 11);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let a = PackedArray::new(6, 4);
        let _ = a.get(4);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn set_too_large_panics() {
        let mut a = PackedArray::new(6, 4);
        a.set(0, 64);
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut a = PackedArray::new(14, 5);
        for i in 0..5 {
            a.set(i, (i as u64 * 1234) & mask(14));
        }
        let b = PackedArray::from_bytes(14, 5, a.as_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_bytes_rejects_bad_length() {
        let err = PackedArray::from_bytes(14, 5, &[0u8; 8]).unwrap_err();
        assert_eq!(
            err,
            PackedArrayError::LengthMismatch {
                expected: 9,
                actual: 8
            }
        );
    }

    #[test]
    fn from_bytes_rejects_nonzero_padding() {
        // 5 fields of 14 bits = 70 bits = 9 bytes with 2 padding bits.
        let mut bytes = [0u8; 9];
        bytes[8] = 0b1100_0000; // high padding bits set
        let err = PackedArray::from_bytes(14, 5, &bytes).unwrap_err();
        assert_eq!(err, PackedArrayError::NonZeroPadding);
        bytes[8] = 0b0011_1111; // all value bits set, padding clear
        assert!(PackedArray::from_bytes(14, 5, &bytes).is_ok());
    }

    #[test]
    fn from_bytes_rejects_bad_width() {
        assert_eq!(
            PackedArray::from_bytes(0, 5, &[]).unwrap_err(),
            PackedArrayError::InvalidWidth { width: 0 }
        );
        assert_eq!(
            PackedArray::from_bytes(65, 5, &[]).unwrap_err(),
            PackedArrayError::InvalidWidth { width: 65 }
        );
    }

    #[test]
    fn clear_resets() {
        let mut a = PackedArray::new(9, 20);
        for i in 0..20 {
            a.set(i, 0x1ff);
        }
        a.clear();
        assert!(a.is_all_zero());
        assert!(a.iter().all(|v| v == 0));
    }

    #[test]
    fn little_endian_layout_is_stable() {
        // Pin the serialized layout: field 0 occupies the lowest bits of
        // byte 0. This is the on-disk format; changing it breaks
        // serialization compatibility.
        let mut a = PackedArray::new(6, 4);
        a.set(0, 0b101011);
        a.set(1, 0b000001);
        // bits: [101011][000001] -> byte0 = 01_101011, byte1 = 0000_0000...
        assert_eq!(a.as_bytes()[0], 0b0110_1011);
        assert_eq!(a.as_bytes()[1], 0b0000_0000);
        a.set(2, 0b111111);
        // field 2 occupies bits 12..18: byte1 bits 4..8 and byte2 bits 0..2
        assert_eq!(a.as_bytes()[1], 0b1111_0000);
        assert_eq!(a.as_bytes()[2], 0b0000_0011);
    }

    #[test]
    fn width_64_full_range() {
        let mut a = PackedArray::new(64, 3);
        a.set(0, u64::MAX);
        a.set(1, 0x0123_4567_89ab_cdef);
        a.set(2, 1);
        assert_eq!(a.get(0), u64::MAX);
        assert_eq!(a.get(1), 0x0123_4567_89ab_cdef);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn empty_array() {
        let a = PackedArray::new(17, 0);
        assert!(a.is_empty());
        assert_eq!(a.as_bytes().len(), 0);
        assert_eq!(a.iter().count(), 0);
        let b = PackedArray::from_bytes(17, 0, &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn backend_selection() {
        assert_eq!(PackedArray::new(8, 4).backend_name(), "u8");
        assert_eq!(PackedArray::new(16, 4).backend_name(), "u16");
        assert_eq!(PackedArray::new(24, 4).backend_name(), "u24");
        assert_eq!(PackedArray::new(32, 4).backend_name(), "u32");
        assert_eq!(PackedArray::new(64, 4).backend_name(), "u64");
        assert_eq!(PackedArray::new(28, 4).backend_name(), "generic");
        assert_eq!(PackedArray::new_generic(32, 4).backend_name(), "generic");
        let mut a = PackedArray::new(16, 4);
        a.force_generic();
        assert_eq!(a.backend_name(), "generic");
    }

    #[test]
    fn specialized_and_generic_agree() {
        for width in [8u32, 16, 24, 32, 64] {
            let len = 23;
            let mut spec = PackedArray::new(width, len);
            let mut gen = PackedArray::new_generic(width, len);
            let m = mask(width);
            for i in 0..len {
                let v = (0x9e37_79b9_7f4a_7c15u64).wrapping_mul(i as u64 + 3) & m;
                spec.set(i, v);
                gen.set(i, v);
            }
            assert_eq!(spec, gen, "width {width}");
            assert_eq!(spec.as_bytes(), gen.as_bytes(), "width {width}");
            for i in 0..len {
                assert_eq!(spec.get(i), gen.get(i), "width {width} i={i}");
            }
            let via_spec: Vec<u64> = spec.iter().collect();
            let via_gen: Vec<u64> = gen.iter().collect();
            assert_eq!(via_spec, via_gen, "width {width}");
        }
    }

    #[test]
    fn equality_ignores_backend() {
        let mut spec = PackedArray::new(32, 5);
        let mut gen = PackedArray::new_generic(32, 5);
        spec.set(3, 0xdead_beef);
        gen.set(3, 0xdead_beef);
        assert_eq!(spec, gen);
        use core::hash::{Hash, Hasher};
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        spec.hash(&mut h1);
        gen.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn word_accessors_cover_buffer() {
        let mut a = PackedArray::new(28, 5); // 140 bits -> 18 bytes -> 3 words
        assert_eq!(a.word_count(), 3);
        a.set(0, mask(28));
        assert_eq!(
            a.word(0) & u64::from(u32::MAX) >> 4,
            u64::from(u32::MAX) >> 4
        );
        // Padded final word matches the raw bytes.
        let mut buf = [0u8; 8];
        buf[..2].copy_from_slice(&a.as_bytes()[16..18]);
        assert_eq!(a.word(2), u64::from_le_bytes(buf));
    }

    #[test]
    fn for_each_nonzero_is_exact() {
        for width in [3u32, 8, 13, 16, 24, 28, 32, 57, 64] {
            let len = 50;
            let mut a = PackedArray::new(width, len);
            let m = mask(width);
            // Sparse pattern with values straddling word boundaries.
            for &i in &[0usize, 7, 8, 21, 22, 49] {
                a.set(i, (0x5bd1_e995u64.wrapping_mul(i as u64 + 1)) & m);
            }
            let mut seen = Vec::new();
            a.for_each_nonzero(|i, v| seen.push((i, v)));
            let want: Vec<(usize, u64)> = (0..len)
                .map(|i| (i, a.get(i)))
                .filter(|&(_, v)| v != 0)
                .collect();
            assert_eq!(seen, want, "width {width}");
        }
        // All-zero array visits nothing.
        let z = PackedArray::new(28, 100);
        z.for_each_nonzero(|_, _| panic!("no fields should be visited"));
    }
}
