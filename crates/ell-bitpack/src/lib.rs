//! Densely packed arrays of fixed-width bit fields.
//!
//! Probabilistic sketches such as HyperLogLog and ExaLogLog store their state
//! in `m` registers of `w` bits each, packed back-to-back into a single byte
//! array so that the whole state can be serialized with a `memcpy` and merged
//! in place without allocations. This crate provides that storage substrate:
//!
//! * [`PackedArray`] — an array of `len` fields, each `width` bits wide
//!   (1 ≤ `width` ≤ 64), packed little-endian into a contiguous byte buffer
//!   of exactly `ceil(len * width / 8)` bytes.
//!
//! The bit layout is *little-endian within the buffer*: field `i` occupies
//! bits `[i*width, (i+1)*width)` of the buffer, where bit `b` of the buffer
//! is bit `b % 8` of byte `b / 8`. This layout means byte-aligned widths
//! (8, 16, 24, 32, …) degenerate to plain byte slices, and the serialized
//! form is identical on all platforms.
//!
//! # Example
//!
//! ```
//! use ell_bitpack::PackedArray;
//!
//! // 4 registers of 28 bits each (the optimal ExaLogLog(2,20) width):
//! // two registers pack into exactly 7 bytes.
//! let mut regs = PackedArray::new(28, 4);
//! assert_eq!(regs.as_bytes().len(), 14);
//! regs.set(2, 0x0abc_def1);
//! assert_eq!(regs.get(2), 0x0abc_def1);
//! assert_eq!(regs.get(1), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

/// Maximum supported field width in bits.
pub const MAX_WIDTH: u32 = 64;

/// An array of `len` fields of `width` bits each, packed into a byte buffer.
///
/// See the [crate-level documentation](crate) for the bit layout.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PackedArray {
    bits: Vec<u8>,
    width: u32,
    len: usize,
}

/// Errors returned when constructing a [`PackedArray`] from raw parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedArrayError {
    /// The requested width was 0 or exceeded [`MAX_WIDTH`].
    InvalidWidth {
        /// The offending width.
        width: u32,
    },
    /// The byte buffer length does not match `ceil(len * width / 8)`.
    LengthMismatch {
        /// Bytes expected from `(width, len)`.
        expected: usize,
        /// Bytes actually provided.
        actual: usize,
    },
    /// Unused trailing bits in the last byte were not zero.
    NonZeroPadding,
}

impl fmt::Display for PackedArrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackedArrayError::InvalidWidth { width } => {
                write!(f, "field width {width} out of range 1..={MAX_WIDTH}")
            }
            PackedArrayError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer holds {actual} bytes but layout requires {expected}"
                )
            }
            PackedArrayError::NonZeroPadding => {
                write!(f, "unused trailing bits of the last byte must be zero")
            }
        }
    }
}

impl std::error::Error for PackedArrayError {}

/// Number of bytes needed for `len` fields of `width` bits.
#[inline]
pub const fn bytes_for(width: u32, len: usize) -> usize {
    (len * width as usize).div_ceil(8)
}

impl PackedArray {
    /// Creates a zero-initialized array of `len` fields of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than [`MAX_WIDTH`].
    #[must_use]
    pub fn new(width: u32, len: usize) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "field width {width} out of range 1..={MAX_WIDTH}"
        );
        PackedArray {
            bits: vec![0u8; bytes_for(width, len)],
            width,
            len,
        }
    }

    /// Reconstructs an array from its serialized byte form.
    ///
    /// The buffer must be exactly `ceil(len * width / 8)` bytes and any
    /// unused high bits of the final byte must be zero (as produced by
    /// [`PackedArray::as_bytes`]); otherwise an error is returned. This
    /// strictness turns many accidental corruptions into hard errors.
    pub fn from_bytes(width: u32, len: usize, bytes: &[u8]) -> Result<Self, PackedArrayError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(PackedArrayError::InvalidWidth { width });
        }
        // Checked layout computation: an attacker-controlled `len` (e.g. a
        // corrupted length field in a serialized sketch) must surface as a
        // LengthMismatch, not an arithmetic overflow.
        let expected = match len.checked_mul(width as usize).map(|bits| bits.div_ceil(8)) {
            Some(expected) => expected,
            None => {
                return Err(PackedArrayError::LengthMismatch {
                    expected: usize::MAX,
                    actual: bytes.len(),
                })
            }
        };
        if bytes.len() != expected {
            return Err(PackedArrayError::LengthMismatch {
                expected,
                actual: bytes.len(),
            });
        }
        let used_bits = len * width as usize;
        let trailing = expected * 8 - used_bits;
        if trailing > 0 {
            let last = bytes[expected - 1];
            if last >> (8 - trailing) != 0 {
                return Err(PackedArrayError::NonZeroPadding);
            }
        }
        Ok(PackedArray {
            bits: bytes.to_vec(),
            width,
            len,
        })
    }

    /// Field width in bits.
    #[inline]
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of fields.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array holds zero fields.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing byte buffer; also the canonical serialized form.
    #[inline]
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    /// Mask with the low `width` bits set.
    #[inline]
    #[must_use]
    pub fn value_mask(&self) -> u64 {
        mask(self.width)
    }

    /// Reads field `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let bit = i * self.width as usize;
        let byte = bit >> 3;
        let shift = (bit & 7) as u32;
        // A field of up to 64 bits starting at an arbitrary bit offset spans
        // at most 9 bytes; a 16-byte little-endian window covers it. The
        // window is clipped at the buffer end (missing bytes read as zero,
        // which is correct because those bits are past the last field).
        let window = self.window16(byte);
        ((window >> shift) as u64) & mask(self.width)
    }

    /// Writes field `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` or if `value` does not fit in `width` bits.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        assert!(
            value <= mask(self.width),
            "value {value:#x} does not fit in {} bits",
            self.width
        );
        let bit = i * self.width as usize;
        let byte = bit >> 3;
        let shift = (bit & 7) as u32;
        let end = (self.bits.len()).min(byte + 16);
        let span = end - byte;
        let mut window = [0u8; 16];
        window[..span].copy_from_slice(&self.bits[byte..end]);
        let mut w = u128::from_le_bytes(window);
        w &= !((mask(self.width) as u128) << shift);
        w |= (value as u128) << shift;
        let out = w.to_le_bytes();
        self.bits[byte..end].copy_from_slice(&out[..span]);
    }

    /// Iterates over all field values in index order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Resets every field to zero without reallocating.
    pub fn clear(&mut self) {
        self.bits.fill(0);
    }

    /// Returns true if every field is zero.
    #[must_use]
    pub fn is_all_zero(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    #[inline]
    fn window16(&self, byte: usize) -> u128 {
        let end = self.bits.len().min(byte + 16);
        let span = end - byte;
        if span == 16 {
            // Common case: full window available.
            let mut window = [0u8; 16];
            window.copy_from_slice(&self.bits[byte..end]);
            u128::from_le_bytes(window)
        } else {
            let mut window = [0u8; 16];
            window[..span].copy_from_slice(&self.bits[byte..end]);
            u128::from_le_bytes(window)
        }
    }
}

impl fmt::Debug for PackedArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedArray(width={}, len={}, [", self.width, self.len)?;
        for (i, v) in self.iter().enumerate().take(16) {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:#x}")?;
        }
        if self.len > 16 {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

/// Mask with the low `width` bits set (`width` ≤ 64).
#[inline]
#[must_use]
pub const fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let a = PackedArray::new(6, 100);
        assert_eq!(a.len(), 100);
        assert_eq!(a.width(), 6);
        assert_eq!(a.as_bytes().len(), 75); // 600 bits
        assert!(a.iter().all(|v| v == 0));
        assert!(a.is_all_zero());
    }

    #[test]
    fn bytes_for_matches_manual() {
        assert_eq!(bytes_for(6, 4), 3);
        assert_eq!(bytes_for(28, 2), 7);
        assert_eq!(bytes_for(28, 4), 14);
        assert_eq!(bytes_for(1, 9), 2);
        assert_eq!(bytes_for(64, 3), 24);
        assert_eq!(bytes_for(8, 0), 0);
    }

    #[test]
    fn set_get_roundtrip_all_widths() {
        for width in 1..=64u32 {
            let len = 37;
            let mut a = PackedArray::new(width, len);
            let m = mask(width);
            // A pattern that differs per index and exercises high bits.
            for i in 0..len {
                let v = (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)) & m;
                a.set(i, v);
            }
            for i in 0..len {
                let v = (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i as u64 + 1)) & m;
                assert_eq!(a.get(i), v, "width={width} i={i}");
            }
        }
    }

    #[test]
    fn neighbours_unaffected() {
        for width in [3u32, 5, 7, 11, 13, 28, 31, 33, 63] {
            let mut a = PackedArray::new(width, 9);
            let m = mask(width);
            for i in 0..9 {
                a.set(i, m); // all ones
            }
            a.set(4, 0);
            for i in 0..9 {
                let expect = if i == 4 { 0 } else { m };
                assert_eq!(a.get(i), expect, "width={width} i={i}");
            }
        }
    }

    #[test]
    fn last_field_at_buffer_end() {
        // Width chosen so the final field ends exactly at the buffer edge
        // and also so it does not (padding case).
        let mut a = PackedArray::new(28, 2); // exactly 7 bytes
        a.set(1, mask(28));
        assert_eq!(a.get(1), mask(28));
        let mut b = PackedArray::new(28, 3); // 84 bits -> 11 bytes, 4 bits padding
        b.set(2, mask(28));
        assert_eq!(b.get(2), mask(28));
        assert_eq!(b.as_bytes().len(), 11);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let a = PackedArray::new(6, 4);
        let _ = a.get(4);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn set_too_large_panics() {
        let mut a = PackedArray::new(6, 4);
        a.set(0, 64);
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut a = PackedArray::new(14, 5);
        for i in 0..5 {
            a.set(i, (i as u64 * 1234) & mask(14));
        }
        let b = PackedArray::from_bytes(14, 5, a.as_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_bytes_rejects_bad_length() {
        let err = PackedArray::from_bytes(14, 5, &[0u8; 8]).unwrap_err();
        assert_eq!(
            err,
            PackedArrayError::LengthMismatch {
                expected: 9,
                actual: 8
            }
        );
    }

    #[test]
    fn from_bytes_rejects_nonzero_padding() {
        // 5 fields of 14 bits = 70 bits = 9 bytes with 2 padding bits.
        let mut bytes = [0u8; 9];
        bytes[8] = 0b1100_0000; // high padding bits set
        let err = PackedArray::from_bytes(14, 5, &bytes).unwrap_err();
        assert_eq!(err, PackedArrayError::NonZeroPadding);
        bytes[8] = 0b0011_1111; // all value bits set, padding clear
        assert!(PackedArray::from_bytes(14, 5, &bytes).is_ok());
    }

    #[test]
    fn from_bytes_rejects_bad_width() {
        assert_eq!(
            PackedArray::from_bytes(0, 5, &[]).unwrap_err(),
            PackedArrayError::InvalidWidth { width: 0 }
        );
        assert_eq!(
            PackedArray::from_bytes(65, 5, &[]).unwrap_err(),
            PackedArrayError::InvalidWidth { width: 65 }
        );
    }

    #[test]
    fn clear_resets() {
        let mut a = PackedArray::new(9, 20);
        for i in 0..20 {
            a.set(i, 0x1ff);
        }
        a.clear();
        assert!(a.is_all_zero());
        assert!(a.iter().all(|v| v == 0));
    }

    #[test]
    fn little_endian_layout_is_stable() {
        // Pin the serialized layout: field 0 occupies the lowest bits of
        // byte 0. This is the on-disk format; changing it breaks
        // serialization compatibility.
        let mut a = PackedArray::new(6, 4);
        a.set(0, 0b101011);
        a.set(1, 0b000001);
        // bits: [101011][000001] -> byte0 = 01_101011, byte1 = 0000_0000...
        assert_eq!(a.as_bytes()[0], 0b0110_1011);
        assert_eq!(a.as_bytes()[1], 0b0000_0000);
        a.set(2, 0b111111);
        // field 2 occupies bits 12..18: byte1 bits 4..8 and byte2 bits 0..2
        assert_eq!(a.as_bytes()[1], 0b1111_0000);
        assert_eq!(a.as_bytes()[2], 0b0000_0011);
    }

    #[test]
    fn width_64_full_range() {
        let mut a = PackedArray::new(64, 3);
        a.set(0, u64::MAX);
        a.set(1, 0x0123_4567_89ab_cdef);
        a.set(2, 1);
        assert_eq!(a.get(0), u64::MAX);
        assert_eq!(a.get(1), 0x0123_4567_89ab_cdef);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn empty_array() {
        let a = PackedArray::new(17, 0);
        assert!(a.is_empty());
        assert_eq!(a.as_bytes().len(), 0);
        assert_eq!(a.iter().count(), 0);
        let b = PackedArray::from_bytes(17, 0, &[]).unwrap();
        assert_eq!(a, b);
    }
}
