//! Property tests for the scan kernels: every kernel (scalar reference,
//! portable SWAR, AVX2 where the hardware has it) must be bit-identical
//! to the scalar path — same nonzero fields visited in the same order,
//! same zero verdicts, and run partitions that merge to the same maximal
//! same-class runs — across widths 1..=64, including fields straddling
//! word and run boundaries, plus a deterministic sweep of adversarial
//! shapes (all-zero, all-ones, alternating, isolated straddlers).

use ell_bitpack::kernels::{self, Kernel, Run, RunCursor, WordView, ZeroRun, ZeroRuns};
use ell_bitpack::{mask, PackedArray};
use proptest::prelude::*;

/// Builds an array from (index, value) writes.
fn build(width: u32, len: usize, writes: &[(usize, u64)]) -> PackedArray {
    let mut a = PackedArray::new(width, len);
    for &(i, v) in writes {
        a.set(i % len.max(1), v & mask(width));
    }
    a
}

fn nonzero_with(a: &PackedArray, kernel: Kernel) -> Vec<(usize, u64)> {
    let mut out = Vec::new();
    a.for_each_nonzero_with(kernel, |i, v| out.push((i, v)));
    out
}

/// Maximal same-class merge runs (adjacent kernel runs coalesced).
fn coalesced_runs(kernel: Kernel, ours: &[u8], theirs: &[u8]) -> Vec<Run> {
    let mut cursor = RunCursor::new(kernel);
    let mut out: Vec<Run> = Vec::new();
    while let Some(r) = cursor.next_run(WordView::new(ours), WordView::new(theirs)) {
        match out.last_mut() {
            Some(prev) if prev.class == r.class && prev.end == r.start => prev.end = r.end,
            _ => out.push(r),
        }
    }
    out
}

fn coalesced_zero_runs(kernel: Kernel, bytes: &[u8]) -> Vec<ZeroRun> {
    let mut out: Vec<ZeroRun> = Vec::new();
    for r in ZeroRuns::new(WordView::new(bytes), kernel) {
        match out.last_mut() {
            Some(prev) if prev.zero == r.zero && prev.end == r.start => prev.end = r.end,
            _ => out.push(r),
        }
    }
    out
}

fn writes_strategy(len: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0..len, any::<u64>()), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Nonzero iteration visits exactly the nonzero fields, in index
    /// order, identically under every kernel.
    #[test]
    fn nonzero_iteration_bit_identical(
        width in 1u32..=64,
        len in 1usize..120,
        writes in (1usize..120).prop_flat_map(writes_strategy)
    ) {
        let a = build(width, len, &writes);
        let reference: Vec<(usize, u64)> = (0..a.len())
            .map(|i| (i, a.get(i)))
            .filter(|&(_, v)| v != 0)
            .collect();
        for kernel in kernels::available() {
            prop_assert_eq!(
                nonzero_with(&a, kernel),
                reference.clone(),
                "kernel {} width {}",
                kernel.name(),
                width
            );
        }
    }

    /// The merge run partition of every kernel coalesces to the scalar
    /// (maximal) partition, covers the buffer contiguously, and agrees
    /// with the per-word scalar classification everywhere.
    #[test]
    fn run_scan_bit_identical(
        width in 1u32..=64,
        len in 1usize..120,
        ours in (1usize..120).prop_flat_map(writes_strategy),
        theirs in (1usize..120).prop_flat_map(writes_strategy),
        copy_prefix in 0usize..120
    ) {
        let a = build(width, len, &ours);
        // Force equal-word runs by copying a prefix of `a` into `b`.
        let mut b = build(width, len, &theirs);
        for i in 0..copy_prefix.min(len) {
            b.set(i, a.get(i));
        }
        let canonical = coalesced_runs(Kernel::Scalar, a.as_bytes(), b.as_bytes());
        let mut covered = 0usize;
        for r in &canonical {
            prop_assert_eq!(r.start, covered);
            prop_assert!(r.end > r.start);
            covered = r.end;
        }
        prop_assert_eq!(covered, a.words().word_count());
        for kernel in kernels::available() {
            prop_assert_eq!(
                coalesced_runs(kernel, a.as_bytes(), b.as_bytes()),
                canonical.clone(),
                "kernel {}",
                kernel.name()
            );
        }
    }

    /// Zero-run scanning and the whole-buffer zero test agree with the
    /// scalar reference under every kernel.
    #[test]
    fn zero_scan_bit_identical(
        width in 1u32..=64,
        len in 1usize..120,
        writes in (1usize..120).prop_flat_map(writes_strategy)
    ) {
        let a = build(width, len, &writes);
        let canonical = coalesced_zero_runs(Kernel::Scalar, a.as_bytes());
        let all_zero = a.as_bytes().iter().all(|&b| b == 0);
        for kernel in kernels::available() {
            prop_assert_eq!(
                coalesced_zero_runs(kernel, a.as_bytes()),
                canonical.clone(),
                "kernel {}",
                kernel.name()
            );
            prop_assert_eq!(kernels::is_all_zero(a.as_bytes(), kernel), all_zero);
        }
    }
}

/// Deterministic adversarial shapes: all-zero, all-ones, alternating
/// fields, and isolated values placed to straddle every word boundary of
/// the buffer — the cases where a run-boundary field must be decoded
/// from two differently-classified runs.
#[test]
fn adversarial_shapes_all_widths() {
    for width in 1u32..=64 {
        let len = (512 / width as usize).clamp(9, 80);
        let m = mask(width);
        let mut shapes: Vec<PackedArray> = Vec::new();
        shapes.push(PackedArray::new(width, len)); // all zero
        let mut ones = PackedArray::new(width, len);
        let mut alt = PackedArray::new(width, len);
        for i in 0..len {
            ones.set(i, m);
            if i % 2 == 0 {
                alt.set(i, 1u64.max(m & 0x5555_5555_5555_5555));
            }
        }
        shapes.push(ones);
        shapes.push(alt);
        // One isolated nonzero field starting just before each word
        // boundary, so its bits straddle a zero/nonzero run boundary.
        let bits = len * width as usize;
        for word_boundary in (64..bits).step_by(64) {
            let i = (word_boundary - 1) / width as usize;
            let mut s = PackedArray::new(width, len);
            s.set(i, m);
            shapes.push(s);
        }
        for (si, a) in shapes.iter().enumerate() {
            let reference = nonzero_with(a, Kernel::Scalar);
            for kernel in kernels::available() {
                assert_eq!(
                    nonzero_with(a, kernel),
                    reference,
                    "kernel {} width {width} shape {si}",
                    kernel.name()
                );
                assert_eq!(
                    kernels::is_all_zero(a.as_bytes(), kernel),
                    si == 0,
                    "kernel {} width {width} shape {si}",
                    kernel.name()
                );
            }
            // Pairwise run scans between all shapes of this width.
            for b in &shapes {
                let canonical = coalesced_runs(Kernel::Scalar, a.as_bytes(), b.as_bytes());
                for kernel in kernels::available() {
                    assert_eq!(
                        coalesced_runs(kernel, a.as_bytes(), b.as_bytes()),
                        canonical,
                        "kernel {} width {width}",
                        kernel.name()
                    );
                }
            }
        }
    }
}
