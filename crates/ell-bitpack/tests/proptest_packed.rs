//! Property-based tests comparing `PackedArray` against a naive
//! `Vec<u64>` reference model under random operation sequences.

use ell_bitpack::{mask, PackedArray};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set(usize, u64),
    Get(usize),
}

fn ops_strategy(len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..len, any::<u64>()).prop_map(|(i, v)| Op::Set(i, v)),
            (0..len).prop_map(Op::Get),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_reference_model(
        width in 1u32..=64,
        len in 1usize..100,
        ops in (1usize..100).prop_flat_map(ops_strategy)
    ) {
        let mut packed = PackedArray::new(width, len);
        let mut model = vec![0u64; len];
        for op in ops {
            match op {
                Op::Set(i, v) => {
                    let i = i % len;
                    let v = v & mask(width);
                    packed.set(i, v);
                    model[i] = v;
                }
                Op::Get(i) => {
                    let i = i % len;
                    prop_assert_eq!(packed.get(i), model[i]);
                }
            }
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(packed.get(i), m);
        }
    }

    #[test]
    fn serialization_roundtrip(
        width in 1u32..=64,
        len in 0usize..80,
        seed in any::<u64>()
    ) {
        let mut a = PackedArray::new(width, len);
        let mut s = seed;
        for i in 0..len {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            a.set(i, s & mask(width));
        }
        let b = PackedArray::from_bytes(width, len, a.as_bytes()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn buffer_size_is_minimal(width in 1u32..=64, len in 0usize..100) {
        let a = PackedArray::new(width, len);
        let bits = len * width as usize;
        prop_assert_eq!(a.as_bytes().len(), bits.div_ceil(8));
    }

    /// The width-specialized backends must be bit-identical to the generic
    /// shifted-window path: same `get` results, same `as_bytes`, same
    /// `from_bytes` reconstruction, for every width (byte-aligned widths
    /// exercise the dedicated u8/u16/u24/u32/u64 backends, the rest
    /// degenerate to generic-vs-generic).
    #[test]
    fn specialized_backend_matches_generic(
        width in 1u32..=64,
        len in 1usize..100,
        ops in (1usize..100).prop_flat_map(ops_strategy)
    ) {
        let mut spec = PackedArray::new(width, len);
        let mut gen = PackedArray::new_generic(width, len);
        for op in ops {
            match op {
                Op::Set(i, v) => {
                    let i = i % len;
                    let v = v & mask(width);
                    spec.set(i, v);
                    gen.set(i, v);
                }
                Op::Get(i) => {
                    let i = i % len;
                    prop_assert_eq!(spec.get(i), gen.get(i));
                }
            }
        }
        // Identical logical state, identical serialized bytes.
        prop_assert_eq!(&spec, &gen);
        prop_assert_eq!(spec.as_bytes(), gen.as_bytes());
        let via_iter_spec: Vec<u64> = spec.iter().collect();
        let via_iter_gen: Vec<u64> = gen.iter().collect();
        prop_assert_eq!(via_iter_spec, via_iter_gen);
        // from_bytes re-selects the specialized backend and must decode
        // the generic path's bytes exactly (and vice versa).
        let respec = PackedArray::from_bytes(width, len, gen.as_bytes()).unwrap();
        for i in 0..len {
            prop_assert_eq!(respec.get(i), gen.get(i));
        }
        let mut regen = PackedArray::from_bytes(width, len, spec.as_bytes()).unwrap();
        regen.force_generic();
        for i in 0..len {
            prop_assert_eq!(regen.get(i), spec.get(i));
        }
    }

    /// The word-scanning nonzero iteration must visit exactly the nonzero
    /// fields, in order, for every width — including fields straddling
    /// zero/nonzero word-run boundaries.
    #[test]
    fn for_each_nonzero_matches_filtered_scan(
        width in 1u32..=64,
        len in 1usize..120,
        sets in prop::collection::vec((any::<usize>(), any::<u64>()), 0..20)
    ) {
        let mut a = PackedArray::new(width, len);
        for &(i, v) in &sets {
            a.set(i % len, v & mask(width));
        }
        let mut visited = Vec::new();
        a.for_each_nonzero(|i, v| visited.push((i, v)));
        let expected: Vec<(usize, u64)> = (0..len)
            .map(|i| (i, a.get(i)))
            .filter(|&(_, v)| v != 0)
            .collect();
        prop_assert_eq!(visited, expected);
    }

    /// Word accessors reassemble to exactly the byte buffer (zero-padded
    /// final word), independent of backend.
    #[test]
    fn words_cover_bytes(width in 1u32..=64, len in 0usize..80, seed in any::<u64>()) {
        let mut a = PackedArray::new(width, len);
        let mut s = seed;
        for i in 0..len {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            a.set(i, s & mask(width));
        }
        let mut rebuilt = Vec::new();
        for w in 0..a.word_count() {
            rebuilt.extend_from_slice(&a.word(w).to_le_bytes());
        }
        rebuilt.truncate(a.as_bytes().len());
        prop_assert_eq!(rebuilt.as_slice(), a.as_bytes());
    }
}
