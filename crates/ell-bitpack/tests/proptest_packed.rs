//! Property-based tests comparing `PackedArray` against a naive
//! `Vec<u64>` reference model under random operation sequences.

use ell_bitpack::{mask, PackedArray};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Set(usize, u64),
    Get(usize),
}

fn ops_strategy(len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..len, any::<u64>()).prop_map(|(i, v)| Op::Set(i, v)),
            (0..len).prop_map(Op::Get),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_reference_model(
        width in 1u32..=64,
        len in 1usize..100,
        ops in (1usize..100).prop_flat_map(ops_strategy)
    ) {
        let mut packed = PackedArray::new(width, len);
        let mut model = vec![0u64; len];
        for op in ops {
            match op {
                Op::Set(i, v) => {
                    let i = i % len;
                    let v = v & mask(width);
                    packed.set(i, v);
                    model[i] = v;
                }
                Op::Get(i) => {
                    let i = i % len;
                    prop_assert_eq!(packed.get(i), model[i]);
                }
            }
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(packed.get(i), m);
        }
    }

    #[test]
    fn serialization_roundtrip(
        width in 1u32..=64,
        len in 0usize..80,
        seed in any::<u64>()
    ) {
        let mut a = PackedArray::new(width, len);
        let mut s = seed;
        for i in 0..len {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            a.set(i, s & mask(width));
        }
        let b = PackedArray::from_bytes(width, len, a.as_bytes()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn buffer_size_is_minimal(width in 1u32..=64, len in 0usize..100) {
        let a = PackedArray::new(width, len);
        let bits = len * width as usize;
        prop_assert_eq!(a.as_bytes().len(), bits.div_ceil(8));
    }
}
