//! The five protocol models. Each module exposes a `model()` closure
//! body suitable for [`shuttle::explore`]; the invariants are asserted
//! inside the model, so a violating interleaving panics and surfaces
//! with a replay token.

pub mod cas_merge;
pub mod handoff;
pub mod snapshot;
pub mod suffix_chain;
pub mod tiers;

use shuttle::sync::atomic::{AtomicU64, Ordering};

/// Faithful port of `AtomicExaLogLog::rmw_register`: CAS-applies the
/// monotone closure `f` to the `width`-bit lane at `shift` until it
/// sticks. Returns whether the lane changed.
pub(crate) fn rmw_lane(word: &AtomicU64, shift: u32, width: u32, f: impl Fn(u64) -> u64) -> bool {
    let field = (1u64 << width) - 1;
    // ordering: Relaxed — model port of the production CAS loop; the
    // scheduler runs every shim op SeqCst regardless (see shuttle docs).
    let mut current = word.load(Ordering::Relaxed);
    loop {
        let old = (current >> shift) & field;
        let new = f(old);
        if new == old {
            return false;
        }
        let updated = (current & !(field << shift)) | (new << shift);
        // ordering: Relaxed/Relaxed — model port; see above.
        match word.compare_exchange_weak(current, updated, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => current = actual,
        }
    }
}

/// Reads the `width`-bit lane at `shift` of a packed word value.
pub(crate) fn lane(word_bits: u64, shift: u32, width: u32) -> u64 {
    (word_bits >> shift) & ((1u64 << width) - 1)
}
