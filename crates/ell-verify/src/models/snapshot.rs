//! Protocol 4: snapshot during hot ingest.
//!
//! The real code: `AtomicExaLogLog::snapshot` (and `for_each_nonzero`)
//! walks the word array with plain loads while inserters keep CAS-ing
//! registers. There is no quiescing: the snapshot is *not* a point-in-
//! time cut, and the estimator contract only needs each register to be
//! (a) untorn, (b) some value the register actually held, and (c) at
//! least as large as any state the snapshotter already observed — the
//! monotone sub-state argument in CONCURRENCY.md § "Snapshot during hot
//! ingest" (which is why the production load is Relaxed, not Acquire).
//!
//! The model packs two 16-bit lanes into one word. An ingest thread
//! performs three register updates; a snapshot thread takes two
//! word-snapshots back to back. Asserted per snapshot and per lane:
//!
//! 1. **legality** — the observed lane value is one of the states that
//!    lane actually passes through (the update chain is enumerable);
//! 2. **monotonicity** — the second snapshot's lane is ≥ the first's
//!    under join order (`merge(a, b) == b`);
//! 3. **convergence** — a final snapshot after join equals the full
//!    sequential merge.

use exaloglog::registers;
use shuttle::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::{lane, rmw_lane};

const D: u8 = 2;
const WIDTH: u32 = 16;

/// One run of the model; explore with [`shuttle::explore`].
pub fn model() {
    let word = Arc::new(AtomicU64::new(0));

    // The ingest chain: lane 0 sees k=4 then k=1; lane 1 sees k=6.
    // Every prefix of each lane's chain is a state the lane holds.
    let l0_states = {
        let s1 = registers::update(0, 4, D);
        let s2 = registers::update(s1, 1, D);
        [0, s1, s2]
    };
    let l1_states = {
        let s1 = registers::update(0, 6, D);
        [0, s1]
    };

    let w = Arc::clone(&word);
    let ingester = shuttle::thread::spawn(move || {
        rmw_lane(&w, 0, WIDTH, |r| registers::update(r, 4, D));
        rmw_lane(&w, WIDTH, WIDTH, |r| registers::update(r, 6, D));
        rmw_lane(&w, 0, WIDTH, |r| registers::update(r, 1, D));
    });

    let w = Arc::clone(&word);
    let snapshotter = shuttle::thread::spawn(move || {
        // ordering: Relaxed — the exact production snapshot load; the
        // model checks the sub-state contract that justifies it.
        let first = w.load(Ordering::Relaxed);
        let second = w.load(Ordering::Relaxed);
        (first, second)
    });

    ingester.join().expect("ingester");
    let (first, second) = snapshotter.join().expect("snapshotter");

    for (snap, label) in [(first, "first"), (second, "second")] {
        let l0 = lane(snap, 0, WIDTH);
        let l1 = lane(snap, WIDTH, WIDTH);
        assert!(
            l0_states.contains(&l0),
            "{label} snapshot lane 0 = {l0:#x} is not a state the lane held (torn?)"
        );
        assert!(
            l1_states.contains(&l1),
            "{label} snapshot lane 1 = {l1:#x} is not a state the lane held (torn?)"
        );
    }

    // Monotone: the later snapshot dominates the earlier one per lane
    // (join with the earlier state is a no-op).
    for shift in [0, WIDTH] {
        let a = lane(first, shift, WIDTH);
        let b = lane(second, shift, WIDTH);
        assert_eq!(
            registers::merge(a, b, D),
            b,
            "snapshot went backwards on lane at shift {shift}"
        );
    }

    // ordering: Relaxed — read after join; the join edge orders it.
    let final_bits = word.load(Ordering::Relaxed);
    assert_eq!(
        lane(final_bits, 0, WIDTH),
        l0_states[2],
        "lane 0 did not converge to the full sequential chain"
    );
    assert_eq!(
        lane(final_bits, WIDTH, WIDTH),
        l1_states[1],
        "lane 1 did not converge to the full sequential chain"
    );
}
