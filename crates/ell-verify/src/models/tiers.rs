//! Protocol 5: tier demote vs promote-on-access vs concurrent flush.
//!
//! The real code: `EllStore::demote_idle` sweeps shard entries under
//! the write lock, compressing idle hot sketches into warm byte blobs;
//! reads promote a warm entry back to hot on access; flushes that land
//! on a warm entry buffer their delta as *pending* rather than paying a
//! decompress-merge-recompress round trip. All three transitions run
//! under the same shard write lock, so the race surface is transition
//! *ordering*, not torn state: a demote sliding in between a flush's
//! tier check and its merge, a promote racing a demote, pending deltas
//! surviving promote.
//!
//! The model is one entry with the union-of-bits sketch stand-in:
//! `Hot(u64)` vs `Warm { blob, pending }` where `blob` is the
//! "compressed" image and `pending` buffers flush deltas. Threads:
//! a demoter, a promote-on-access reader, and a flusher pushing two
//! deltas.
//!
//! Invariant: **conservation** — whatever order the transitions fire
//! in, a final forced promote observes the union of the initial state
//! and every flushed delta; no delta is dropped on the hot→warm edge or
//! stranded in `pending` across the warm→hot edge
//! (CONCURRENCY.md § "Tier demote vs promote").

use shuttle::sync::RwLock;
use std::sync::Arc;

enum Entry {
    Hot(u64),
    Warm { blob: u64, pending: u64 },
}

impl Entry {
    /// Port of the demote sweep body: compress a hot sketch. Idempotent
    /// no-op on an already-warm entry (the sweep re-checks under lock).
    fn demote(&mut self) {
        if let Entry::Hot(v) = *self {
            *self = Entry::Warm {
                blob: v,
                pending: 0,
            };
        }
    }

    /// Port of promote-on-access: decompress and merge the pending
    /// buffer back in. Returns the now-hot value.
    fn promote(&mut self) -> u64 {
        match *self {
            Entry::Hot(v) => v,
            Entry::Warm { blob, pending } => {
                let v = blob | pending;
                *self = Entry::Hot(v);
                v
            }
        }
    }

    /// Port of the flush merge: hot entries merge in place, warm
    /// entries buffer the delta as pending.
    fn flush(&mut self, delta: u64) {
        match self {
            Entry::Hot(v) => *v |= delta,
            Entry::Warm { pending, .. } => *pending |= delta,
        }
    }
}

/// One run of the model; explore with [`shuttle::explore`].
pub fn model() {
    const INITIAL: u64 = 0b0001;
    let entry = Arc::new(RwLock::new(Entry::Hot(INITIAL)));

    // Demoter: the idle sweep fires twice (an entry promoted by a read
    // can go idle and be demoted again).
    let e = Arc::clone(&entry);
    let demoter = shuttle::thread::spawn(move || {
        e.write().expect("entry").demote();
        e.write().expect("entry").demote();
    });

    // Reader: promote-on-access. The value it observes must already be
    // a legal sub-state: initial plus some subset of flushed deltas.
    let e = Arc::clone(&entry);
    let reader = shuttle::thread::spawn(move || {
        let seen = e.write().expect("entry").promote();
        assert_eq!(
            seen & INITIAL,
            INITIAL,
            "promote-on-access lost the pre-demote state"
        );
        assert_eq!(
            seen & !(INITIAL | 0b0110),
            0,
            "promote-on-access conjured bits no flush ever wrote"
        );
    });

    // Flusher: two deltas that must survive whatever tier the entry is
    // in when they land.
    let e = Arc::clone(&entry);
    let flusher = shuttle::thread::spawn(move || {
        e.write().expect("entry").flush(0b0010);
        e.write().expect("entry").flush(0b0100);
    });

    demoter.join().expect("demoter");
    reader.join().expect("reader");
    flusher.join().expect("flusher");

    // Conservation: force-promote and require the union of everything.
    let total = entry.write().expect("entry").promote();
    assert_eq!(
        total,
        INITIAL | 0b0110,
        "tier transitions dropped or stranded a contribution"
    );
}
