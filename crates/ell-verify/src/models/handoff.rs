//! Protocol 2: session handoff-queue drain vs barrier flush.
//!
//! The real code: `EllStore::flush_group_ref` tries the shard write
//! lock opportunistically; on contention it parks `(key, delta)` clones
//! on the shard's `Mutex<Vec<…>>` handoff queue, and once the queue
//! depth reaches `HANDOFF_SOFT_CAPACITY` the enqueuer itself performs a
//! blocking drain. Barrier flushes take the write lock outright, drain
//! the queue *first*, merge their own deltas, and finish with
//! `drain_all_pending`. Every drainer loops `mem::take` on the queue
//! under the write lock until it observes empty.
//!
//! The model shrinks the slot to one `u64` whose bits union (a faithful
//! stand-in for register join — both are monotone idempotent merges)
//! and the soft capacity to 1 so the forced-drain edge is reachable in
//! a handful of steps.
//!
//! Invariants: a barrier flush leaves the queue empty behind it; after
//! both sessions finish and the drop-barrier runs, the slot holds the
//! union of every delta (nothing parked is lost, nothing merges twice —
//! idempotence makes double-merge invisible, so the model also asserts
//! queue emptiness rather than merge counts).

use shuttle::sync::{Mutex, RwLock, TryLockError};
use std::sync::Arc;

/// Model-scale `HANDOFF_SOFT_CAPACITY`.
const SOFT_CAPACITY: usize = 1;

struct Shard {
    slot: RwLock<u64>,
    pending: Mutex<Vec<u64>>,
}

impl Shard {
    /// Port of `drain_queue_into`: pop until observed empty, merging
    /// under the already-held write lock.
    fn drain_queue_into(&self, slot: &mut u64) {
        loop {
            let batch = std::mem::take(&mut *self.pending.lock().expect("queue"));
            if batch.is_empty() {
                return;
            }
            for delta in batch {
                *slot |= delta;
            }
        }
    }

    /// Port of `drain_shard(si, blocking=true)`.
    fn drain_blocking(&self) {
        let mut slot = self.slot.write().expect("shard");
        self.drain_queue_into(&mut slot);
    }

    /// Port of `flush_group_ref`: opportunistic merge, else park and
    /// maybe force-drain.
    fn flush(&self, delta: u64, barrier: bool) {
        let guard = if barrier {
            Some(self.slot.write().expect("shard"))
        } else {
            match self.slot.try_write() {
                Err(TryLockError::WouldBlock) => None,
                other => Some(other.expect("shard")),
            }
        };
        match guard {
            Some(mut slot) => {
                self.drain_queue_into(&mut slot);
                *slot |= delta;
            }
            None => {
                let depth = {
                    let mut queue = self.pending.lock().expect("queue");
                    queue.push(delta);
                    queue.len()
                };
                if depth >= SOFT_CAPACITY {
                    self.drain_blocking();
                }
            }
        }
    }

    /// Port of `drain_all_pending` (single shard).
    fn drain_all_pending(&self) {
        let parked = !self.pending.lock().expect("queue").is_empty();
        if parked {
            self.drain_blocking();
        }
    }
}

/// One run of the model; explore with [`shuttle::explore`].
pub fn model() {
    let shard = Arc::new(Shard {
        slot: RwLock::new(0),
        pending: Mutex::new(Vec::new()),
    });

    // Session A: two opportunistic auto-flushes (the contended path
    // parks and, at depth ≥ 1, force-drains).
    let s = Arc::clone(&shard);
    let session_a = shuttle::thread::spawn(move || {
        s.flush(0b0001, false);
        s.flush(0b0010, false);
    });

    // Session B: a barrier flush (drains first, then read-your-writes
    // via drain_all_pending) — the `flush_with(barrier=true)` path.
    let s = Arc::clone(&shard);
    let session_b = shuttle::thread::spawn(move || {
        s.flush(0b0100, true);
        s.drain_all_pending();
        // Read-your-writes: after a barrier completes, this session's
        // own delta must be visible in the slot.
        let slot = s.slot.read().expect("shard");
        assert!(
            *slot & 0b0100 != 0,
            "barrier flush lost its own delta (read-your-writes)"
        );
    });

    session_a.join().expect("session a");
    session_b.join().expect("session b");

    // The drop-barrier every session runs on close.
    shard.drain_all_pending();

    let slot = shard.slot.read().expect("shard");
    assert_eq!(
        *slot, 0b0111,
        "final slot diverged from the union of all deltas"
    );
    assert!(
        shard.pending.lock().expect("queue").is_empty(),
        "deltas left parked after the final barrier"
    );
}
