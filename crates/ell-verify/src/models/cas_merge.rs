//! Protocol 1: atomic register CAS merge vs concurrent insert.
//!
//! The real code: `AtomicExaLogLog::insert_hash` and
//! `AtomicExaLogLog::merge_from` both funnel into `rmw_register`, a
//! Relaxed CAS loop over a word packing several registers. Two lanes in
//! one word already exhibit every distinct race: two writers on the
//! same lane (CAS retry path) and writers on different lanes of the
//! same word (false-sharing path, where each CAS rewrites the *whole*
//! word and must not clobber the neighbor lane).
//!
//! Invariant: whatever the interleaving, the final word equals the
//! sequential join of all contributions — the monotone-merge
//! order-freedom claim the store's exactness argument rests on
//! (CONCURRENCY.md § "CAS register merge").

use exaloglog::registers;
use shuttle::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use super::{lane, rmw_lane};

/// Register shape: ELL d = 2 (update values carry two indicator bits),
/// 16-bit lanes — two lanes of one packed word.
const D: u8 = 2;
const WIDTH: u32 = 16;

/// One run of the model; explore with [`shuttle::explore`].
pub fn model() {
    let word = Arc::new(AtomicU64::new(0));

    // Thread A: two inserts landing on both lanes (update values k=5
    // then k=3, the Algorithm-2 register update).
    let w = Arc::clone(&word);
    let inserter = shuttle::thread::spawn(move || {
        rmw_lane(&w, 0, WIDTH, |r| registers::update(r, 5, D));
        rmw_lane(&w, WIDTH, WIDTH, |r| registers::update(r, 3, D));
    });

    // Thread B: merges a two-register delta sketch into the same word
    // (the Algorithm-5 register merge), overlapping lane 0.
    let delta0 = registers::update(registers::update(0, 5, D), 2, D);
    let delta1 = registers::update(0, 7, D);
    let w = Arc::clone(&word);
    let merger = shuttle::thread::spawn(move || {
        rmw_lane(&w, 0, WIDTH, |r| registers::merge(r, delta0, D));
        rmw_lane(&w, WIDTH, WIDTH, |r| registers::merge(r, delta1, D));
    });

    inserter.join().expect("inserter");
    merger.join().expect("merger");

    // Sequential reference: the join of every contribution, per lane.
    let want0 = registers::merge(
        registers::update(0, 5, D),
        registers::merge(0, delta0, D),
        D,
    );
    let want1 = registers::merge(
        registers::update(0, 3, D),
        registers::merge(0, delta1, D),
        D,
    );

    // ordering: Relaxed — final read after both joins; the join edges
    // already order it (and the model scheduler is SeqCst anyway).
    let bits = word.load(Ordering::Relaxed);
    assert_eq!(
        lane(bits, 0, WIDTH),
        want0,
        "lane 0 diverged from the sequential join"
    );
    assert_eq!(
        lane(bits, WIDTH, WIDTH),
        want1,
        "lane 1 diverged from the sequential join (neighbor clobbered?)"
    );
}
