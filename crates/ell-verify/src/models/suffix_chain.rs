//! Protocol 3: suffix-chain double-checked rebuild vs racing queries.
//!
//! The real code: `WindowedStore::with_suffixes` serves windowed unions
//! from a precomputed suffix-union chain. Queries take the epoch-ring
//! read lock and check a `chain_valid` watermark; if the chain covers
//! the request it is served directly, otherwise the query drops the
//! read lock, takes the write lock, **re-checks** the watermark (another
//! query may have rebuilt in the gap), rebuilds, and serves. Late
//! writes into ring slots truncate the watermark so no query ever sees
//! a chain that predates a slot it summarizes.
//!
//! The model is a three-slot ring of `u64` bit-union "sketches" with a
//! two-entry chain (`suffix[i] = slots[i] | … | slots[2]`). One writer
//! ingests two deltas (each invalidates); two queriers race the
//! double-checked rebuild against it and against each other.
//!
//! Invariant: *every* answer served from the chain equals direct
//! recomputation from the slots **under the same lock guard** — i.e.
//! the chain is never stale relative to the locked ring state it was
//! served with (CONCURRENCY.md § "Suffix-chain rebuild").

use shuttle::sync::RwLock;
use std::sync::Arc;

struct Ring {
    slots: [u64; 3],
    /// Suffix unions; entry `i` covers `slots[i..]`.
    suffix: [u64; 3],
    /// Double-checked watermark: chain entries are trustworthy iff set.
    chain_valid: bool,
}

impl Ring {
    fn recompute(&self, i: usize) -> u64 {
        self.slots[i..].iter().fold(0, |u, s| u | s)
    }

    fn rebuild(&mut self) {
        let mut acc = 0;
        for i in (0..3).rev() {
            acc |= self.slots[i];
            self.suffix[i] = acc;
        }
        self.chain_valid = true;
    }
}

/// Port of the `with_suffixes` double-checked read path: serve from the
/// chain when valid, else upgrade, re-check, rebuild. Returns the
/// served answer; the staleness assert runs under the serving guard.
fn query(ring: &RwLock<Ring>, i: usize) -> u64 {
    {
        let r = ring.read().expect("ring");
        if r.chain_valid {
            let served = r.suffix[i];
            assert_eq!(
                served,
                r.recompute(i),
                "chain served a stale suffix union for slot {i} (fast path)"
            );
            return served;
        }
    }
    // Upgrade: the read guard is gone, so a writer or another query may
    // run before we get the write lock — hence the re-check.
    let mut r = ring.write().expect("ring");
    if !r.chain_valid {
        r.rebuild();
    }
    let served = r.suffix[i];
    assert_eq!(
        served,
        r.recompute(i),
        "chain served a stale suffix union for slot {i} (rebuild path)"
    );
    served
}

/// One run of the model; explore with [`shuttle::explore`].
pub fn model() {
    let ring = Arc::new(RwLock::new(Ring {
        slots: [0b0001, 0b0010, 0b0100],
        suffix: [0; 3],
        chain_valid: false,
    }));

    // Writer: two late ingests into different slots, each truncating
    // the watermark (the rotation/ingest path).
    let r = Arc::clone(&ring);
    let writer = shuttle::thread::spawn(move || {
        for (slot, delta) in [(1usize, 0b1000u64), (2, 0b1_0000)] {
            let mut g = r.write().expect("ring");
            g.slots[slot] |= delta;
            g.chain_valid = false;
        }
    });

    // Two racing queriers exercising both chain entries; each answer is
    // self-checked against recomputation inside `query`.
    let r = Arc::clone(&ring);
    let q0 = shuttle::thread::spawn(move || {
        query(&r, 0);
        query(&r, 1);
    });
    let r = Arc::clone(&ring);
    let q1 = shuttle::thread::spawn(move || {
        query(&r, 1);
        query(&r, 0);
    });

    writer.join().expect("writer");
    q0.join().expect("query 0");
    q1.join().expect("query 1");

    // Quiescent check: a final query sees every delta.
    let full = query(&ring, 0);
    assert_eq!(full, 0b1_1111, "final suffix union lost an ingested delta");
}
