//! # ell-verify — model checking for the lock-free serving core
//!
//! The store stack's concurrency story rests on a handful of subtle
//! protocols built in PRs 3–9: the CAS word-packed atomic sketch, the
//! per-shard handoff queues with `try_write` opportunism, the
//! double-checked suffix-chain rebuild, snapshot-during-ingest, and the
//! tier promote/demote ladder. Stress tests sample a few interleavings
//! of each per run; this crate instead ports each protocol to a
//! **small-scale model** over the vendored [`shuttle`] deterministic
//! scheduler and *enumerates* interleavings — exhaustive DFS with
//! bounded preemption, topped up with seeded-random schedules to at
//! least 10 000 per protocol (the repo's acceptance gate).
//!
//! ## The five protocols
//!
//! | model | real code | invariant checked |
//! |---|---|---|
//! | [`models::cas_merge`] | `exaloglog::atomic::rmw_register` | concurrent CAS insert + merge converge to the sequential join |
//! | [`models::handoff`] | `ell-store::store::flush_group_ref` / `drain_shard` | no parked delta is lost; barrier drain leaves the queue empty |
//! | [`models::suffix_chain`] | `ell-store::window::with_suffixes` | every chain-served answer equals recomputation from the slots |
//! | [`models::snapshot`] | `exaloglog::atomic::snapshot` | snapshots are monotone, untorn, and legal sub-states |
//! | [`models::tiers`] | `ell-store::store::demote_idle` / promote-on-access | demote/promote/flush races conserve every contribution |
//!
//! Models use the shuttle shims directly, so they are deterministic
//! under a plain `cargo test`. The crates under test additionally route
//! their own `std::sync` use through `sync` facade modules; building
//! the workspace with `RUSTFLAGS="--cfg ell_verify"` swaps the *real*
//! types onto the same scheduler, which enables the integration models
//! in `tests/real_models.rs` (run by the `concurrency-model` CI job).
//!
//! ## Why small models are enough
//!
//! Every structure involved is a monotone join semilattice (registers
//! only grow; token sets and ring slots union; promotion is
//! threshold-crossing), so correctness claims are *per-merge-edge*, not
//! per-size: a two-lane word, a one-slot shard, or a three-epoch ring
//! already contains every distinct edge ordering the full-size
//! structure can produce. What grows with size is only the number of
//! independent copies of those edges. CONCURRENCY.md gives the
//! happens-before argument per protocol.

pub mod models;

pub use shuttle::{explore, replay, Config, Report, Violation};

/// The exploration configuration every protocol test uses: DFS with a
/// preemption bound of 3 (the CHESS observation: almost all concurrency
/// bugs need very few preemptions), topped up with seeded-random
/// schedules to the acceptance gate of ≥ 10 000 interleavings.
#[must_use]
pub fn protocol_config() -> Config {
    Config::default()
}

/// Number of interleavings every protocol model must explore cleanly
/// (the repo's acceptance gate).
pub const MIN_INTERLEAVINGS: u64 = 10_000;
