//! Real-type models: the production `AtomicExaLogLog` and `EllStore`
//! running on the deterministic scheduler.
//!
//! These compile only under `RUSTFLAGS="--cfg ell_verify"`, which swaps
//! the `sync` facades in `exaloglog` and `ell-store` from `std::sync`
//! to the shuttle shims — every atomic op and lock acquisition in the
//! *actual* production code becomes a scheduling decision point. The
//! real types take hundreds of shim operations per run (each register
//! word is a decision point), so DFS cannot finish a level; these use
//! seeded-random schedules only, at counts small enough for CI. The
//! exhaustive ≥ 10 000-interleaving gate lives in `protocols.rs` over
//! the distilled small-scale models; this file is the fidelity check
//! that the distillations model the code we actually ship.
//!
//! Models use a single key so nothing depends on `HashMap` shard
//! iteration order (which is seeded per-process, not per-schedule).
#![cfg(ell_verify)]

use ell_store::EllStore;
use ell_verify::Config;
use exaloglog::atomic::AtomicExaLogLog;
use exaloglog::EllConfig;
use std::sync::Arc;

fn small_cfg() -> EllConfig {
    EllConfig::new(2, 16, 2).expect("valid config")
}

#[test]
fn real_atomic_sketch_concurrent_insert_and_snapshot() {
    let report = ell_verify::explore(&Config::default().random_only(150).seed(11), || {
        let sketch = Arc::new(AtomicExaLogLog::new(small_cfg()));
        let s = Arc::clone(&sketch);
        let ingester = shuttle::thread::spawn(move || {
            s.insert_hash(0x9E37_79B9_7F4A_7C15);
            s.insert_hash(0xDEAD_BEEF_CAFE_F00D);
        });
        let s = Arc::clone(&sketch);
        let snapshotter = shuttle::thread::spawn(move || s.snapshot());
        ingester.join().expect("ingester");
        let mid = snapshotter.join().expect("snapshotter");

        // The mid-flight snapshot must be a sub-state: merging it into
        // the final state changes nothing (join order-freedom).
        let fin = sketch.snapshot();
        let mut joined = fin.clone();
        joined.merge_from(&mid).expect("compatible configs");
        assert_eq!(
            joined.registers().collect::<Vec<u64>>(),
            fin.registers().collect::<Vec<u64>>(),
            "mid-ingest snapshot was not a sub-state of the final state"
        );
    });
    report.assert_clean(150);
}

#[test]
fn real_atomic_sketch_concurrent_merge_converges() {
    let report = ell_verify::explore(&Config::default().random_only(150).seed(12), || {
        let a = AtomicExaLogLog::new(small_cfg());
        a.insert_hash(0x0123_4567_89AB_CDEF);
        let delta = a.snapshot();

        let target = Arc::new(AtomicExaLogLog::new(small_cfg()));
        let t = Arc::clone(&target);
        let d = delta.clone();
        let merger = shuttle::thread::spawn(move || {
            t.merge_from(&d).expect("compatible configs");
        });
        let t = Arc::clone(&target);
        let inserter = shuttle::thread::spawn(move || {
            t.insert_hash(0xFEDC_BA98_7654_3210);
        });
        merger.join().expect("merger");
        inserter.join().expect("inserter");

        // Sequential reference.
        let seq = AtomicExaLogLog::new(small_cfg());
        seq.insert_hash(0xFEDC_BA98_7654_3210);
        seq.merge_from(&delta).expect("compatible configs");
        assert_eq!(
            target.snapshot().registers().collect::<Vec<u64>>(),
            seq.snapshot().registers().collect::<Vec<u64>>(),
            "concurrent merge + insert diverged from the sequential join"
        );
    });
    report.assert_clean(150);
}

#[test]
fn real_store_sessions_race_barrier_flush() {
    let report = ell_verify::explore(&Config::default().random_only(100).seed(13), || {
        let store = Arc::new(EllStore::new(1, small_cfg()).expect("store"));

        let s = Arc::clone(&store);
        let session_a = shuttle::thread::spawn(move || {
            let mut sess = s.session().with_auto_flush(1);
            sess.insert("k", 0x1111_2222_3333_4444);
            sess.insert("k", 0x5555_6666_7777_8888);
            // Drop runs the session's own barrier flush.
        });
        let s = Arc::clone(&store);
        let session_b = shuttle::thread::spawn(move || {
            let mut sess = s.session().with_auto_flush(1);
            sess.insert("k", 0x9999_AAAA_BBBB_CCCC);
            sess.flush();
        });
        session_a.join().expect("session a");
        session_b.join().expect("session b");

        // Sequential reference: same three hashes through direct inserts.
        let seq = EllStore::new(1, small_cfg()).expect("store");
        seq.insert("k", 0x1111_2222_3333_4444);
        seq.insert("k", 0x5555_6666_7777_8888);
        seq.insert("k", 0x9999_AAAA_BBBB_CCCC);
        assert_eq!(
            store.estimate("k"),
            seq.estimate("k"),
            "racing sessions diverged from the sequential ingest"
        );
    });
    report.assert_clean(100);
}

#[test]
fn real_store_demote_races_ingest_and_estimate() {
    let report = ell_verify::explore(&Config::default().random_only(100).seed(14), || {
        let store = Arc::new(EllStore::new(1, small_cfg()).expect("store"));
        store.insert("k", 0x1111_2222_3333_4444);

        let s = Arc::clone(&store);
        let demoter = shuttle::thread::spawn(move || {
            // Everything is idle relative to a far-future clock tick.
            s.advance_clock(1_000_000);
            s.demote_idle()
        });
        let s = Arc::clone(&store);
        let flusher = shuttle::thread::spawn(move || {
            s.insert("k", 0x9999_AAAA_BBBB_CCCC);
        });
        let s = Arc::clone(&store);
        let reader = shuttle::thread::spawn(move || s.estimate("k"));

        demoter.join().expect("demoter");
        flusher.join().expect("flusher");
        let seen = reader.join().expect("reader");
        assert!(seen.is_some(), "racing estimate lost the key entirely");

        let seq = EllStore::new(1, small_cfg()).expect("store");
        seq.insert("k", 0x1111_2222_3333_4444);
        seq.insert("k", 0x9999_AAAA_BBBB_CCCC);
        assert_eq!(
            store.estimate("k"),
            seq.estimate("k"),
            "demote/ingest race dropped a contribution"
        );
    });
    report.assert_clean(100);
}
