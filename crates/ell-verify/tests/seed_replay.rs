//! Satellite gate: a deliberately racy model must (a) fail under
//! exploration, (b) print a replay token, and (c) reproduce the same
//! failure deterministically when the token is fed back — for both the
//! DFS (`dfs:…`) and seeded-random (`rand:…`) token forms.

use ell_verify::Config;
use shuttle::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The classic lost update: load-modify-store with no CAS. Two
/// incrementers racing means some interleaving ends at 1, not 2.
fn racy_counter() {
    let counter = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let c = Arc::clone(&counter);
            shuttle::thread::spawn(move || {
                // ordering: Relaxed — the bug is the non-atomic RMW
                // split, not the memory order; the model runs SeqCst.
                let v = c.load(Ordering::Relaxed);
                c.store(v + 1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("incrementer");
    }
    // ordering: Relaxed — read after joins.
    let total = counter.load(Ordering::Relaxed);
    assert_eq!(total, 2, "lost update: counter = {total}");
}

fn assert_replays(token: &str, expect_in_message: &str) {
    for attempt in 0..3 {
        let v = ell_verify::replay(token, racy_counter)
            .unwrap_or_else(|| panic!("replay {token:?} attempt {attempt} did not fail"));
        assert!(
            v.message.contains(expect_in_message),
            "replay {token:?} reproduced a different failure: {}",
            v.message
        );
        assert_eq!(
            v.replay, token,
            "replay produced a different token than it was given"
        );
    }
}

#[test]
fn dfs_finds_the_race_and_the_token_replays_it() {
    let report = ell_verify::explore(&Config::default().max_interleavings(2_000), racy_counter);
    let v = report
        .violation
        .expect("DFS must find the seeded lost update");
    assert!(
        v.replay.starts_with("dfs:"),
        "DFS-found violation carries a dfs token, got {:?}",
        v.replay
    );
    assert!(v.message.contains("lost update"), "{}", v.message);
    assert_replays(&v.replay, "lost update");
}

#[test]
fn random_schedules_find_the_race_and_the_seed_replays_it() {
    let report = ell_verify::explore(
        &Config::default().random_only(5_000).seed(0xDECAF),
        racy_counter,
    );
    let v = report
        .violation
        .expect("random schedules must find the seeded lost update");
    assert!(
        v.replay.starts_with("rand:"),
        "random-found violation carries a rand token, got {:?}",
        v.replay
    );
    assert_replays(&v.replay, "lost update");
}

#[test]
fn replay_token_is_printed_in_display() {
    let report = ell_verify::explore(&Config::default().max_interleavings(500), racy_counter);
    let v = report.violation.expect("race found");
    let shown = v.to_string();
    assert!(
        shown.contains(&v.replay),
        "Display must include the replay token; got {shown:?}"
    );
}
