//! Ties the `ci/xlint.rs` static pass into the ordinary test suite: a
//! plain `cargo test` fails on any new unjustified Ordering, stray
//! `unsafe`, facade bypass, narrowing decode cast, or library panic —
//! not just the CI job.

use std::path::PathBuf;
use std::process::Command;

#[test]
fn xlint_reports_zero_findings() {
    let repo_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let src = repo_root.join("ci/xlint.rs");
    let bin = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("xlint");

    let compile = Command::new("rustc")
        .args(["--edition", "2021", "-O"])
        .arg(&src)
        .arg("-o")
        .arg(&bin)
        .output()
        .expect("rustc must be runnable");
    assert!(
        compile.status.success(),
        "ci/xlint.rs failed to compile:\n{}",
        String::from_utf8_lossy(&compile.stderr)
    );

    let run = Command::new(&bin)
        .arg(&repo_root)
        // Findings report lands next to the binary, not in the repo.
        .current_dir(env!("CARGO_TARGET_TMPDIR"))
        .output()
        .expect("xlint must be runnable");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(run.status.success(), "xlint found violations:\n{stderr}");
    assert!(
        stderr.contains("xlint: clean"),
        "xlint did not report a clean scan:\n{stderr}"
    );
}
