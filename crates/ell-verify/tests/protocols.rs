//! The acceptance gate: each of the five protocol models must explore
//! at least [`ell_verify::MIN_INTERLEAVINGS`] interleavings with zero
//! violations. A failure prints a replay token; feed it to
//! [`ell_verify::replay`] (see `seed_replay.rs`) to reproduce the exact
//! schedule deterministically.

use ell_verify::{models, protocol_config, MIN_INTERLEAVINGS};

fn check(name: &str, model: fn()) {
    let report = ell_verify::explore(&protocol_config(), model);
    eprintln!(
        "{name}: {} interleavings (dfs exhausted: {})",
        report.interleavings, report.dfs_exhausted
    );
    report.assert_clean(MIN_INTERLEAVINGS);
}

#[test]
fn cas_merge_converges_to_sequential_join() {
    check("cas_merge", models::cas_merge::model);
}

#[test]
fn handoff_queue_never_loses_a_delta() {
    check("handoff", models::handoff::model);
}

#[test]
fn suffix_chain_never_serves_stale_unions() {
    check("suffix_chain", models::suffix_chain::model);
}

#[test]
fn snapshots_are_monotone_legal_substates() {
    check("snapshot", models::snapshot::model);
}

#[test]
fn tier_transitions_conserve_contributions() {
    check("tiers", models::tiers::model);
}
