//! Bit-level coding substrate for compressed sketch serialization.
//!
//! The paper's Table 2 shows that the CPC sketch reaches its headline
//! serialized size "by expensive compression during serialization"
//! (Lang 2017), and §6 names entropy coding as the route to the
//! compressed-MVP optima of Figures 6 and 7. This crate provides the
//! coding machinery both of those need, independent of any specific
//! sketch:
//!
//! * [`bitio`] — MSB-first [`BitWriter`]/[`BitReader`] over byte buffers;
//! * [`codes`] — universal integer codes: unary, Elias gamma/delta, and
//!   Rice (Golomb with power-of-two divisor), each with a length
//!   function for size accounting without encoding;
//! * [`range`] — a carry-propagating binary range coder (LZMA design)
//!   with static and adaptive bit models.
//!
//! Consumers in this workspace: `ell-baselines::cpc` compresses the PCSA
//! state column-wise with Rice-coded bitmaps, and the `ell` CLI exposes
//! the coders for sketch-file compression. `exaloglog::compress` keeps
//! its own specialized coder whose probability model is derived from the
//! paper's §3.1 register distribution.
//!
//! All decoders are hardened against truncated or corrupt input: they
//! return [`CodecError`] instead of panicking, which the workspace-level
//! failure-injection tests verify byte-by-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitio;
pub mod codes;
pub mod range;

pub use bitio::{BitReader, BitWriter};
pub use range::{AdaptiveBitModel, RangeDecoder, RangeEncoder, PROB_BITS, PROB_ONE};

/// Errors produced by the decoders in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value under decode was complete.
    UnexpectedEnd,
    /// A decoded value violates the code's structural constraints
    /// (e.g. an Elias length prefix larger than 64 bits).
    Malformed {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "input ended mid-value"),
            CodecError::Malformed { reason } => write!(f, "malformed input: {reason}"),
        }
    }
}

impl std::error::Error for CodecError {}
