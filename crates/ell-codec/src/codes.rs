//! Universal integer codes over [`BitWriter`]/[`BitReader`].
//!
//! Three classic prefix-free codes, chosen because together they cover
//! the value distributions arising in sketch compression:
//!
//! * **unary** — optimal for geometric(1/2) values such as PCSA bitmap
//!   column gaps near the "waterline";
//! * **Elias gamma / delta** — parameter-free codes for values with
//!   unknown, heavy-tailed range (delta is asymptotically optimal);
//! * **Rice(k)** — Golomb coding with a power-of-two divisor: the
//!   near-optimal choice for geometric values with known rate, used by
//!   the CPC-style PCSA compressor to tune each column band.
//!
//! Every encoder has a matching `*_len` function returning the exact
//! code length in bits, so callers can size-account (and pick the best
//! Rice parameter) without encoding.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;

// ---------------------------------------------------------------------
// Unary
// ---------------------------------------------------------------------

/// Writes `n` as `n` one-bits followed by a terminating zero.
pub fn write_unary(w: &mut BitWriter, n: u64) {
    for _ in 0..n {
        w.write_bit(true);
    }
    w.write_bit(false);
}

/// Length of [`write_unary`] output in bits.
#[must_use]
pub fn unary_len(n: u64) -> u64 {
    n + 1
}

/// Reads a unary-coded value.
///
/// # Errors
///
/// Fails with [`CodecError::UnexpectedEnd`] on truncated input.
pub fn read_unary(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    let mut n = 0u64;
    while r.read_bit()? {
        n += 1;
    }
    Ok(n)
}

// ---------------------------------------------------------------------
// Elias gamma / delta
// ---------------------------------------------------------------------

/// Writes `n ≥ 1` in Elias gamma: ⌊log₂ n⌋ zeros, then `n` in binary.
///
/// # Panics
///
/// Panics if `n == 0` (gamma codes positive integers; shift by one for
/// nonnegative ranges).
pub fn write_gamma(w: &mut BitWriter, n: u64) {
    assert!(n >= 1, "Elias gamma codes positive integers");
    let bits = 64 - n.leading_zeros(); // position of the highest set bit + 1
    for _ in 0..bits - 1 {
        w.write_bit(false);
    }
    w.write_bits(n, bits);
}

/// Length of [`write_gamma`] output in bits.
#[must_use]
pub fn gamma_len(n: u64) -> u64 {
    let bits = u64::from(64 - n.leading_zeros());
    2 * bits - 1
}

/// Reads an Elias-gamma-coded value.
///
/// # Errors
///
/// Fails on truncated input or a length prefix exceeding 64 bits.
pub fn read_gamma(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    let mut zeros = 0u32;
    while !r.read_bit()? {
        zeros += 1;
        if zeros >= 64 {
            return Err(CodecError::Malformed {
                reason: "gamma length prefix exceeds 64 bits",
            });
        }
    }
    // The leading one-bit already consumed is the value's top bit.
    let rest = r.read_bits(zeros)?;
    Ok((1u64 << zeros) | rest)
}

/// Writes `n ≥ 1` in Elias delta: the bit length in gamma, then the
/// value without its leading one.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn write_delta(w: &mut BitWriter, n: u64) {
    assert!(n >= 1, "Elias delta codes positive integers");
    let bits = 64 - n.leading_zeros();
    write_gamma(w, u64::from(bits));
    w.write_bits(n & !(1u64 << (bits - 1)), bits - 1);
}

/// Length of [`write_delta`] output in bits.
#[must_use]
pub fn delta_len(n: u64) -> u64 {
    let bits = u64::from(64 - n.leading_zeros());
    gamma_len(bits) + bits - 1
}

/// Reads an Elias-delta-coded value.
///
/// # Errors
///
/// Fails on truncated input or a bit-length field outside 1..=64.
pub fn read_delta(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    let bits = read_gamma(r)?;
    if bits == 0 || bits > 64 {
        return Err(CodecError::Malformed {
            reason: "delta bit length outside 1..=64",
        });
    }
    // cast: bits ≤ 64, validated by the range check above.
    let bits = bits as u32;
    let rest = r.read_bits(bits - 1)?;
    Ok(if bits == 64 {
        (1u64 << 63) | rest
    } else {
        (1u64 << (bits - 1)) | rest
    })
}

// ---------------------------------------------------------------------
// Rice (Golomb, power-of-two divisor)
// ---------------------------------------------------------------------

/// Writes `n ≥ 0` in Rice(k): the quotient `n >> k` in unary, then the
/// `k` low-order remainder bits.
pub fn write_rice(w: &mut BitWriter, n: u64, k: u32) {
    write_unary(w, n >> k);
    w.write_bits(n, k);
}

/// Length of [`write_rice`] output in bits.
#[must_use]
pub fn rice_len(n: u64, k: u32) -> u64 {
    unary_len(n >> k) + u64::from(k)
}

/// Reads a Rice(k)-coded value.
///
/// # Errors
///
/// Fails on truncated input or a quotient that would overflow 64 bits.
pub fn read_rice(r: &mut BitReader<'_>, k: u32) -> Result<u64, CodecError> {
    let q = read_unary(r)?;
    if k < 64 && q > (u64::MAX >> k) {
        return Err(CodecError::Malformed {
            reason: "Rice quotient overflows 64 bits",
        });
    }
    let rem = r.read_bits(k)?;
    Ok((q << k) | rem)
}

/// The Rice parameter minimizing the total coded size of `values`,
/// searched over `0..=max_k`. Ties resolve to the smallest k.
#[must_use]
pub fn best_rice_parameter(values: &[u64], max_k: u32) -> u32 {
    (0..=max_k)
        .min_by_key(|&k| values.iter().map(|&v| rice_len(v, k)).sum::<u64>())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<W, R>(values: &[u64], write: W, read: R)
    where
        W: Fn(&mut BitWriter, u64),
        R: Fn(&mut BitReader<'_>) -> Result<u64, CodecError>,
    {
        let mut w = BitWriter::new();
        for &v in values {
            write(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in values {
            assert_eq!(read(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn unary_roundtrip_and_len() {
        roundtrip(&[0, 1, 2, 5, 17, 100], write_unary, read_unary);
        let mut w = BitWriter::new();
        write_unary(&mut w, 5);
        assert_eq!(w.bit_len() as u64, unary_len(5));
        assert_eq!(unary_len(0), 1);
    }

    #[test]
    fn gamma_roundtrip_and_len() {
        let values = [1u64, 2, 3, 4, 7, 8, 255, 256, 1 << 20, u64::MAX];
        roundtrip(&values, write_gamma, read_gamma);
        for &v in &values {
            let mut w = BitWriter::new();
            write_gamma(&mut w, v);
            assert_eq!(w.bit_len() as u64, gamma_len(v), "n={v}");
        }
        // Known codewords: 1 → "1", 2 → "010", 3 → "011", 4 → "00100".
        let mut w = BitWriter::new();
        write_gamma(&mut w, 4);
        assert_eq!(w.bit_len(), 5);
        assert_eq!(w.into_bytes(), vec![0b0010_0000]);
    }

    #[test]
    fn delta_roundtrip_and_len() {
        let values = [1u64, 2, 3, 16, 17, 100, 1 << 33, u64::MAX];
        roundtrip(&values, write_delta, read_delta);
        for &v in &values {
            let mut w = BitWriter::new();
            write_delta(&mut w, v);
            assert_eq!(w.bit_len() as u64, delta_len(v), "n={v}");
        }
        // Delta beats gamma for large values.
        assert!(delta_len(1 << 40) < gamma_len(1 << 40));
    }

    #[test]
    fn rice_roundtrip_various_parameters() {
        let values = [0u64, 1, 2, 3, 100, 1000, 65535];
        for k in 0..16 {
            roundtrip(&values, |w, v| write_rice(w, v, k), |r| read_rice(r, k));
        }
        // k = 0 degenerates to unary.
        assert_eq!(rice_len(9, 0), unary_len(9));
    }

    #[test]
    fn best_rice_parameter_matches_geometry() {
        // Values around 2^k are coded best with Rice(≈k).
        let small: Vec<u64> = (0..100).map(|i| i % 3).collect();
        assert!(best_rice_parameter(&small, 20) <= 2);
        let large: Vec<u64> = (0..100).map(|i| 1000 + i).collect();
        let k = best_rice_parameter(&large, 20);
        assert!((8..=11).contains(&k), "k = {k}");
    }

    #[test]
    fn gamma_zero_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut w = BitWriter::new();
            write_gamma(&mut w, 0);
        });
        assert!(result.is_err());
    }

    #[test]
    fn decoders_reject_truncation() {
        let mut w = BitWriter::new();
        write_gamma(&mut w, 1 << 30);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..2]);
        assert!(read_gamma(&mut r).is_err());

        let mut w = BitWriter::new();
        write_rice(&mut w, 500, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..bytes.len() - 1]);
        assert!(read_rice(&mut r, 2).is_err());
    }

    #[test]
    fn gamma_rejects_malformed_prefix() {
        // 64+ leading zeros cannot occur in valid output.
        let bytes = [0u8; 16];
        let mut r = BitReader::new(&bytes);
        assert_eq!(
            read_gamma(&mut r),
            Err(CodecError::Malformed {
                reason: "gamma length prefix exceeds 64 bits"
            })
        );
    }

    #[test]
    fn interleaved_mixed_codes() {
        let mut w = BitWriter::new();
        write_unary(&mut w, 3);
        write_gamma(&mut w, 77);
        write_rice(&mut w, 1234, 5);
        write_delta(&mut w, 99);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(read_unary(&mut r).unwrap(), 3);
        assert_eq!(read_gamma(&mut r).unwrap(), 77);
        assert_eq!(read_rice(&mut r, 5).unwrap(), 1234);
        assert_eq!(read_delta(&mut r).unwrap(), 99);
    }
}
