//! Binary range coder with static and adaptive probability models.
//!
//! The carry-propagating, byte-renormalizing design of the LZMA coder:
//! 32-bit range, 64-bit low accumulator, cache/pending-0xFF carry
//! resolution. Probabilities are 16-bit fixed point ([`PROB_BITS`]).
//! The encoder/decoder pair is exactly symmetric: any sequence of
//! `encode(bit, p)` calls decodes back bit-for-bit as long as the
//! decoder presents the same probability sequence — which adaptive
//! models guarantee by construction, since both sides update from the
//! decoded bits.
//!
//! Compression approaches the model's cross-entropy within a few
//! per-mil, verified by the entropy tests below.

/// Fixed-point probability resolution in bits.
pub const PROB_BITS: u32 = 16;
/// The fixed-point representation of probability 1.
pub const PROB_ONE: u32 = 1 << PROB_BITS;
const TOP: u32 = 1 << 24;

/// Streaming binary range encoder.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        // cast: deliberate truncations — the range coder keeps `low` as
        // 32 fraction bits plus a carry bit in bit 32; `low as u32`
        // selects the fraction, `low >> 32` isolates the carry (≤ 1).
        if (self.low as u32) < 0xff00_0000 || (self.low >> 32) != 0 {
            // cast: carry bit, value is 0 or 1.
            let carry = (self.low >> 32) as u8;
            self.out.push(self.cache.wrapping_add(carry));
            for _ in 1..self.cache_size {
                self.out.push(0xffu8.wrapping_add(carry));
            }
            // cast: top fraction byte (bits 24..32) emitted to the stream.
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        // cast: shift the fraction left one byte, dropping the emitted top.
        self.low = u64::from((self.low as u32) << 8);
    }

    /// Encodes one bit with `P(bit = 1) = p1 / 2^16`. `p1` is clamped
    /// away from 0 and `PROB_ONE` so both symbols remain codable.
    pub fn encode(&mut self, bit: bool, p1: u32) {
        let p1 = p1.clamp(1, PROB_ONE - 1);
        let bound = (self.range >> PROB_BITS) * p1;
        if bit {
            self.range = bound;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encodes one bit, adapting `model` afterwards.
    pub fn encode_adaptive(&mut self, bit: bool, model: &mut AdaptiveBitModel) {
        self.encode(bit, model.prob1());
        model.update(bit);
    }

    /// Flushes the remaining state and returns the coded bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Streaming binary range decoder over a byte slice.
///
/// Reading past the physical end of input yields zero bytes instead of
/// failing: the coder cannot detect truncation by itself (the caller's
/// framing must carry the symbol count), but it never panics.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    range: u32,
    code: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Creates a decoder over `input` (as produced by
    /// [`RangeEncoder::finish`]).
    #[must_use]
    pub fn new(input: &'a [u8]) -> Self {
        let mut d = RangeDecoder {
            range: u32::MAX,
            code: 0,
            input,
            pos: 0,
        };
        // The first byte is the encoder's initial cache; then 4 code bytes.
        let _ = d.next_byte();
        for _ in 0..4 {
            d.code = (d.code << 8) | u32::from(d.next_byte());
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decodes one bit that was encoded with `P(bit = 1) = p1 / 2^16`.
    pub fn decode(&mut self, p1: u32) -> bool {
        let p1 = p1.clamp(1, PROB_ONE - 1);
        let bound = (self.range >> PROB_BITS) * p1;
        let bit = self.code < bound;
        if bit {
            self.range = bound;
        } else {
            self.code -= bound;
            self.range -= bound;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | u32::from(self.next_byte());
        }
        bit
    }

    /// Decodes one bit, adapting `model` afterwards (must mirror the
    /// encoder's [`RangeEncoder::encode_adaptive`] calls exactly).
    pub fn decode_adaptive(&mut self, model: &mut AdaptiveBitModel) -> bool {
        let bit = self.decode(model.prob1());
        model.update(bit);
        bit
    }
}

/// Exponentially-adapting bit probability (the LZMA `prob` update with
/// shift 5): after each observed bit the estimate moves 1/32 of the way
/// toward that bit's extreme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveBitModel {
    prob1: u16,
}

const ADAPT_SHIFT: u32 = 5;

impl Default for AdaptiveBitModel {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveBitModel {
    /// Creates a model at the uninformed estimate P(1) = 1/2.
    #[must_use]
    pub fn new() -> Self {
        AdaptiveBitModel {
            // cast: PROB_ONE / 2 = 2^15, within u16.
            prob1: (PROB_ONE / 2) as u16,
        }
    }

    /// Creates a model with an explicit initial probability (fixed point,
    /// clamped to the codable range).
    #[must_use]
    pub fn with_probability(p1: u32) -> Self {
        AdaptiveBitModel {
            // cast: clamped to 1..=PROB_ONE-1 < 2^16, within u16.
            prob1: p1.clamp(1, PROB_ONE - 1) as u16,
        }
    }

    /// Current estimate of P(bit = 1), in 1/2^16 units.
    #[inline]
    #[must_use]
    pub fn prob1(&self) -> u32 {
        u32::from(self.prob1)
    }

    /// Moves the estimate toward the observed bit.
    #[inline]
    pub fn update(&mut self, bit: bool) {
        if bit {
            // cast: (PROB_ONE - prob1) < 2^16, so the shifted step fits u16.
            self.prob1 += ((PROB_ONE - self.prob1()) >> ADAPT_SHIFT) as u16;
        } else {
            // cast: prob1 < 2^16, so the shifted step fits u16.
            self.prob1 -= (self.prob1() >> ADAPT_SHIFT) as u16;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for reproducible bit streams.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn bernoulli(&mut self, p: f64) -> bool {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64 <= p
        }
    }

    #[test]
    fn static_roundtrip_uniform() {
        let mut rng = Rng(42);
        let bits: Vec<bool> = (0..10_000).map(|_| rng.bernoulli(0.5)).collect();
        let mut enc = RangeEncoder::new();
        for &b in &bits {
            enc.encode(b, PROB_ONE / 2);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &b in &bits {
            assert_eq!(dec.decode(PROB_ONE / 2), b);
        }
        // Uniform bits are incompressible: ≈ n/8 bytes.
        assert!(
            (bytes.len() as f64 - 1250.0).abs() < 30.0,
            "{}",
            bytes.len()
        );
    }

    #[test]
    fn static_roundtrip_skewed_compresses_to_entropy() {
        let p = 0.05f64;
        let mut rng = Rng(7);
        let bits: Vec<bool> = (0..50_000).map(|_| rng.bernoulli(p)).collect();
        let p_fixed = (p * f64::from(PROB_ONE)) as u32;
        let mut enc = RangeEncoder::new();
        for &b in &bits {
            enc.encode(b, p_fixed);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &b in &bits {
            assert_eq!(dec.decode(p_fixed), b);
        }
        // Shannon: H(0.05) ≈ 0.286 bits/bit → ≈ 1790 bytes for 50 000.
        let entropy_bytes = 50_000.0 * 0.2864 / 8.0;
        let ratio = bytes.len() as f64 / entropy_bytes;
        assert!(
            (0.97..1.06).contains(&ratio),
            "coded {} bytes vs entropy {entropy_bytes:.0} (ratio {ratio:.3})",
            bytes.len()
        );
    }

    #[test]
    fn adaptive_roundtrip_tracks_changing_statistics() {
        // First half heavily-zero, second half heavily-one: the adaptive
        // model must follow and the stream must still round-trip.
        let mut rng = Rng(1234);
        let mut bits = Vec::with_capacity(20_000);
        for i in 0..20_000 {
            let p = if i < 10_000 { 0.02 } else { 0.9 };
            bits.push(rng.bernoulli(p));
        }
        let mut enc = RangeEncoder::new();
        let mut model = AdaptiveBitModel::new();
        for &b in &bits {
            enc.encode_adaptive(b, &mut model);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut model = AdaptiveBitModel::new();
        for &b in &bits {
            assert_eq!(dec.decode_adaptive(&mut model), b);
        }
        // Must beat the uniform-model size of 2500 bytes clearly.
        assert!(
            bytes.len() < 1500,
            "adaptive coding too weak: {}",
            bytes.len()
        );
    }

    #[test]
    fn varying_static_probabilities_roundtrip() {
        // Exercise the full probability sweep including the clamped edges.
        let mut rng = Rng(99);
        let mut seq = Vec::new();
        for i in 0..5000u32 {
            let p1 = (i * 13) % (PROB_ONE + 7); // deliberately out of range at times
            let bit = rng.bernoulli(0.3);
            seq.push((bit, p1));
        }
        let mut enc = RangeEncoder::new();
        for &(b, p) in &seq {
            enc.encode(b, p);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &(b, p) in &seq {
            assert_eq!(dec.decode(p), b);
        }
    }

    #[test]
    fn empty_stream() {
        let enc = RangeEncoder::new();
        let bytes = enc.finish();
        assert_eq!(bytes.len(), 5);
        // Decoding nothing from it is fine; decoding bits yields *some*
        // deterministic values without panicking.
        let mut dec = RangeDecoder::new(&bytes);
        let _ = dec.decode(PROB_ONE / 2);
    }

    #[test]
    fn adaptive_model_converges() {
        let mut m = AdaptiveBitModel::new();
        for _ in 0..200 {
            m.update(true);
        }
        assert!(m.prob1() > PROB_ONE * 95 / 100);
        for _ in 0..200 {
            m.update(false);
        }
        assert!(m.prob1() < PROB_ONE * 5 / 100);
        // Never saturates to an uncodable extreme.
        assert!(m.prob1() >= 1 && m.prob1() < PROB_ONE);
    }

    #[test]
    fn truncated_input_does_not_panic() {
        let mut enc = RangeEncoder::new();
        let mut rng = Rng(5);
        let bits: Vec<bool> = (0..1000).map(|_| rng.bernoulli(0.4)).collect();
        for &b in &bits {
            enc.encode(b, PROB_ONE / 3);
        }
        let bytes = enc.finish();
        for cut in [0usize, 1, 2, bytes.len() / 2] {
            let mut dec = RangeDecoder::new(&bytes[..cut]);
            for _ in 0..1000 {
                let _ = dec.decode(PROB_ONE / 3);
            }
        }
    }
}
