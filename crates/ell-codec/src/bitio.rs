//! MSB-first bit-granular I/O over byte buffers.
//!
//! The writer accumulates bits most-significant-first into bytes — the
//! conventional layout for universal codes, where a unary prefix must be
//! scannable from the front. The reader mirrors it exactly: for every
//! write sequence, reading the same widths returns the same values
//! (round-trip property tests below and in `tests/proptest_codec.rs`).

use crate::CodecError;

/// Accumulates bits MSB-first into a growing byte buffer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already filled in the trailing partial byte (0..8).
    fill: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        // `fill` holds the unused bit positions in the trailing byte.
        self.bytes.len() * 8 - self.fill as usize
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        if self.fill == 0 {
            self.bytes.push(0);
            self.fill = 8;
        }
        self.fill -= 1;
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << self.fill;
        }
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} exceeds 64");
        for i in (0..width).rev() {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Finishes the stream, zero-padding the final partial byte, and
    /// returns the buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Number of bits consumed so far.
    #[must_use]
    pub fn bits_consumed(&self) -> usize {
        self.pos
    }

    /// Number of bits still available (including any zero padding the
    /// writer added to the final byte).
    #[must_use]
    pub fn bits_remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] when the input is exhausted.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(CodecError::UnexpectedEnd);
        }
        // cast: pos % 8 < 8, always representable.
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8) as u32)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `width` bits into the low bits of a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEnd`] when fewer than `width` bits
    /// remain.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, CodecError> {
        assert!(width <= 64, "width {width} exceeds 64");
        if self.bits_remaining() < width as usize {
            return Err(CodecError::UnexpectedEnd);
        }
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.read_bit().expect("bounds checked"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [true, false, true, true, false, false, true, false, true];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
        // Padding bits are zero.
        for _ in 9..16 {
            assert!(!r.read_bit().unwrap());
        }
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0b0110, 4);
        assert_eq!(w.into_bytes(), vec![0b1011_0110]);
    }

    #[test]
    fn wide_values_roundtrip() {
        let values = [
            (0u64, 1u32),
            (1, 1),
            (u64::MAX, 64),
            (0xdead_beef, 32),
            (0x1_0000_0001, 33),
            (42, 17),
        ];
        let mut w = BitWriter::new();
        for &(v, width) in &values {
            w.write_bits(v, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &values {
            assert_eq!(r.read_bits(width).unwrap(), v, "width {width}");
        }
    }

    #[test]
    fn zero_width_read_is_empty() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.bits_consumed(), 0);
    }

    #[test]
    fn truncation_detected() {
        let mut w = BitWriter::new();
        w.write_bits(0xffff, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..1]);
        assert_eq!(r.read_bits(16), Err(CodecError::UnexpectedEnd));
        // The cursor is unchanged after a failed wide read.
        assert_eq!(r.bits_consumed(), 0);
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
    }

    #[test]
    fn bit_len_accounting() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bit(true);
        assert_eq!(w.bit_len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 11);
    }
}
