//! Property tests for the coding substrate: every code must round-trip
//! arbitrary value sequences, agree with its length function, and reject
//! (not crash on) truncated input.

use ell_codec::codes::{
    delta_len, gamma_len, read_delta, read_gamma, read_rice, read_unary, rice_len, unary_len,
    write_delta, write_gamma, write_rice, write_unary,
};
use ell_codec::{AdaptiveBitModel, BitReader, BitWriter, RangeDecoder, RangeEncoder, PROB_ONE};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bitio_roundtrip(values in prop::collection::vec((any::<u64>(), 0u32..=64), 0..200)) {
        let mut w = BitWriter::new();
        for &(v, width) in &values {
            w.write_bits(v & mask(width), width);
        }
        let expected_bits: usize = values.iter().map(|&(_, w)| w as usize).sum();
        prop_assert_eq!(w.bit_len(), expected_bits);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &values {
            prop_assert_eq!(r.read_bits(width).unwrap(), v & mask(width));
        }
    }

    #[test]
    fn unary_roundtrip(values in prop::collection::vec(0u64..5000, 0..100)) {
        let mut w = BitWriter::new();
        let mut total = 0u64;
        for &v in &values {
            write_unary(&mut w, v);
            total += unary_len(v);
        }
        prop_assert_eq!(w.bit_len() as u64, total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(read_unary(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn gamma_roundtrip(values in prop::collection::vec(1u64.., 0..200)) {
        let mut w = BitWriter::new();
        let mut total = 0u64;
        for &v in &values {
            write_gamma(&mut w, v);
            total += gamma_len(v);
        }
        prop_assert_eq!(w.bit_len() as u64, total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(read_gamma(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn delta_roundtrip(values in prop::collection::vec(1u64.., 0..200)) {
        let mut w = BitWriter::new();
        let mut total = 0u64;
        for &v in &values {
            write_delta(&mut w, v);
            total += delta_len(v);
        }
        prop_assert_eq!(w.bit_len() as u64, total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(read_delta(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn rice_roundtrip(
        values in prop::collection::vec(any::<u64>(), 0..200),
        k in 0u32..40,
    ) {
        let mut w = BitWriter::new();
        let mut total = 0u64;
        // Cap the quotient at 255 so the unary prefix stays short — the
        // remainder still exercises all k low bits.
        let bounded: Vec<u64> = values.iter().map(|&v| v % (1u64 << (k + 8))).collect();
        for &v in &bounded {
            write_rice(&mut w, v, k);
            total += rice_len(v, k);
        }
        prop_assert_eq!(w.bit_len() as u64, total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &bounded {
            prop_assert_eq!(read_rice(&mut r, k).unwrap(), v);
        }
    }

    #[test]
    fn range_static_roundtrip(
        bits in prop::collection::vec(any::<bool>(), 0..2000),
        p1 in 1u32..=(PROB_ONE - 1),
    ) {
        let mut enc = RangeEncoder::new();
        for &b in &bits {
            enc.encode(b, p1);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &b in &bits {
            prop_assert_eq!(dec.decode(p1), b);
        }
    }

    #[test]
    fn range_adaptive_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..2000)) {
        let mut enc = RangeEncoder::new();
        let mut m = AdaptiveBitModel::new();
        for &b in &bits {
            enc.encode_adaptive(b, &mut m);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut m = AdaptiveBitModel::new();
        for &b in &bits {
            prop_assert_eq!(dec.decode_adaptive(&mut m), b);
        }
    }

    #[test]
    fn truncated_streams_never_panic(
        values in prop::collection::vec(1u64..1_000_000, 1..50),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut w = BitWriter::new();
        for &v in &values {
            write_delta(&mut w, v);
        }
        let bytes = w.into_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let mut r = BitReader::new(&bytes[..cut]);
        // Decoding may fail with an error but must not panic, and any
        // successfully decoded prefix must match the original values.
        for &v in &values {
            match read_delta(&mut r) {
                Ok(decoded) => prop_assert_eq!(decoded, v),
                Err(_) => break,
            }
        }
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}
