#!/usr/bin/env python3
"""Unit tests for the check_bench.py CI gate.

The gate guards every perf number the CI trusts, so its own failure
modes are tested: in particular that malformed reports FAIL loudly
instead of silently skipping gates (the bug class where a bench that
stops writing ``available_parallelism`` would bypass the scaling gate
forever).

Run with: ``python3 -m unittest discover -s ci -p 'test_*.py'``
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_bench import check_file  # noqa: E402


def run_check(payload, **kwargs):
    """Writes payload to a temp file and runs check_file on it."""
    defaults = {
        "min_scaling": 2.0,
        "min_warm_reduction": 2.0,
        "max_hot_ratio": 1.10,
        "min_kernel_speedup": 1.2,
    }
    defaults.update(kwargs)
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False, encoding="utf-8"
    ) as fh:
        json.dump(payload, fh)
        path = fh.name
    try:
        out = io.StringIO()
        with redirect_stdout(out):
            ok = check_file(path, **defaults)
        return ok, out.getvalue()
    finally:
        os.unlink(path)


class VerdictTests(unittest.TestCase):
    def test_all_true_verdicts_pass(self):
        ok, out = run_check({"bench": "t", "law_a": True, "law_b": True})
        self.assertTrue(ok)
        self.assertIn("OK", out)

    def test_false_verdict_fails(self):
        ok, out = run_check({"bench": "t", "law_a": False})
        self.assertFalse(ok)
        self.assertIn("law_a is false", out)

    def test_unreadable_file_fails(self):
        out = io.StringIO()
        with redirect_stdout(out):
            ok = check_file(
                "/nonexistent/bench.json", 2.0, 2.0, 1.10, 1.2
            )
        self.assertFalse(ok)
        self.assertIn("unreadable", out.getvalue())


class ScalingGateTests(unittest.TestCase):
    def base(self, **extra):
        payload = {
            "bench": "parallel",
            "scaling_factor": 3.5,
            "available_parallelism": 8,
            "scaling_threads": 8,
        }
        payload.update(extra)
        return payload

    def test_good_scaling_passes(self):
        ok, out = run_check(self.base())
        self.assertTrue(ok)
        self.assertIn("scaling 3.50x", out)

    def test_low_scaling_fails(self):
        ok, out = run_check(self.base(scaling_factor=1.1))
        self.assertFalse(ok)
        self.assertIn("below the 2.0 gate", out)

    def test_few_cores_skips_with_notice(self):
        ok, out = run_check(self.base(available_parallelism=2, scaling_factor=1.0))
        self.assertTrue(ok)
        self.assertIn("SKIPPED", out)
        self.assertIn("only 2 cores", out)

    def test_unreliable_skips_with_notice(self):
        ok, out = run_check(self.base(unreliable=True, scaling_factor=1.0))
        self.assertTrue(ok)
        self.assertIn("SKIPPED", out)
        self.assertIn("unreliable", out)

    def test_missing_parallelism_fails_loudly(self):
        # The strictness fix: a half-written report must FAIL, not
        # silently skip the gate via a defaulted core count of 0.
        payload = self.base()
        del payload["available_parallelism"]
        ok, out = run_check(payload)
        self.assertFalse(ok)
        self.assertIn("available_parallelism", out)

    def test_missing_threads_fails_loudly(self):
        payload = self.base()
        del payload["scaling_threads"]
        ok, out = run_check(payload)
        self.assertFalse(ok)
        self.assertIn("scaling_threads", out)

    def test_mistyped_factor_fails(self):
        ok, out = run_check(self.base(scaling_factor="fast"))
        self.assertFalse(ok)
        self.assertIn("expected a number", out)

    def test_boolean_factor_fails(self):
        # bool is an int subclass; `"scaling_factor": true` is a broken
        # bench, not a passing one.
        ok, out = run_check(self.base(scaling_factor=True))
        self.assertFalse(ok)
        self.assertIn("expected a number", out)

    def test_mistyped_unreliable_fails(self):
        ok, out = run_check(self.base(unreliable="yes"))
        self.assertFalse(ok)
        self.assertIn("expected a boolean", out)


class TierGateTests(unittest.TestCase):
    def test_good_tier_report_passes(self):
        ok, out = run_check(
            {"bench": "tiers", "warm_bytes_reduction": 3.0, "hot_ingest_ratio": 1.02}
        )
        self.assertTrue(ok)
        self.assertIn("warm reduction 3.00x", out)

    def test_low_reduction_fails(self):
        ok, out = run_check({"bench": "tiers", "warm_bytes_reduction": 1.1})
        self.assertFalse(ok)
        self.assertIn("below the 2.0 gate", out)

    def test_high_hot_ratio_fails(self):
        ok, out = run_check(
            {"bench": "tiers", "warm_bytes_reduction": 3.0, "hot_ingest_ratio": 1.5}
        )
        self.assertFalse(ok)
        self.assertIn("exceeds the 1.10 gate", out)


class KernelGateTests(unittest.TestCase):
    def test_good_kernel_report_passes(self):
        ok, out = run_check(
            {
                "bench": "registers",
                "kernel_equivalence": "ok",
                "swar_merge_speedup_min": 1.8,
            }
        )
        self.assertTrue(ok)
        self.assertIn("kernel equivalence ok", out)

    def test_divergent_kernel_fails(self):
        ok, out = run_check(
            {
                "bench": "registers",
                "kernel_equivalence": "avx2 diverged",
                "swar_merge_speedup_min": 1.8,
            }
        )
        self.assertFalse(ok)
        self.assertIn("kernel_equivalence", out)

    def test_missing_speedup_fails(self):
        ok, out = run_check({"bench": "registers", "kernel_equivalence": "ok"})
        self.assertFalse(ok)
        self.assertIn("swar_merge_speedup_min missing", out)

    def test_mistyped_speedup_fails(self):
        ok, out = run_check(
            {
                "bench": "registers",
                "kernel_equivalence": "ok",
                "swar_merge_speedup_min": "fast",
            }
        )
        self.assertFalse(ok)
        self.assertIn("expected a number", out)


if __name__ == "__main__":
    unittest.main()
