//! xlint — the workspace's custom static pass for the lock-free core.
//!
//! Compiled and run directly by CI (and by the `xlint_gate` test in
//! `ell-verify`) with a bare `rustc ci/xlint.rs`; std only, no registry
//! dependencies, mirroring the offline-vendoring policy.
//!
//! Five checks, all lexical (a line scanner that skips comments,
//! strings, `crates/vendor/**`, and `#[cfg(test)]` modules):
//!
//! 1. **ordering-comment** — every use of an atomic `Ordering::`
//!    variant must carry a `// ordering:` justification on the same
//!    line or within the three lines above it. The comment is the
//!    reviewable artifact: a memory-ordering choice with no recorded
//!    reason is unauditable.
//! 2. **unsafe-scope** — `unsafe` is forbidden outside the AVX2 kernel
//!    module (and the bench binary's instrumented allocator); inside
//!    the allowlist every `unsafe` block needs an adjacent `// SAFETY:`
//!    comment.
//! 3. **sync-facade** — library code in the facade crates (`exaloglog`,
//!    `ell-store`) must route scheduler-relevant sync types through the
//!    crate's `sync` module, never `std::sync`/`core::sync::atomic`
//!    directly, or the `--cfg ell_verify` model-checking build silently
//!    loses coverage of that site. (`std::sync::Arc` is exempt: it has
//!    no scheduling semantics.)
//! 4. **narrowing-cast** — in wire-format decode paths, `as` casts to a
//!    narrower integer type must carry a `// cast:` justification;
//!    silent truncation of attacker- or disk-controlled lengths is how
//!    decoders corrupt memory accounting.
//! 5. **panic-free** — `panic!`/`.unwrap()` are forbidden in library
//!    (non-test, non-bin) code outside an explicit allowlist; libraries
//!    surface `Result` or `.expect` with an invariant message.
//!
//! Findings are written to `xlint-findings.json` (machine-readable,
//! uploaded as a CI artifact) and printed to stderr; any finding makes
//! the process exit 1.
//!
//! Usage: `xlint [REPO_ROOT]` (default: current directory).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// How many extra code-bearing lines above a flagged site a
/// justification comment (`// ordering:`, `// SAFETY:`, `// cast:`) may
/// sit, beyond the contiguous comment block directly above it. Covers
/// a marker on the statement's first line when the flagged token sits
/// on a continuation line of the same expression.
const JUSTIFICATION_WINDOW: usize = 3;

const ATOMIC_ORDERINGS: [&str; 5] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Files allowed to contain `unsafe`, with the reason on record.
/// Every block inside them still needs a `// SAFETY:` comment.
const UNSAFE_ALLOWLIST: [(&str, &str); 2] = [
    (
        "crates/ell-bitpack/src/kernels.rs",
        "AVX2 intrinsics module; #![deny(unsafe_code)] at crate root, #![allow] scoped to avx2",
    ),
    (
        "crates/ell-bench/src/bin/bench_window.rs",
        "bench-only GlobalAlloc shim for peak-RSS instrumentation; never linked into libraries",
    ),
];

/// Library sites allowed to panic, with the reason on record.
/// Matched as (path suffix, line must contain).
const PANIC_ALLOWLIST: [(&str, &str, &str); 1] = [(
    "crates/ell-bitpack/src/kernels.rs",
    "ELL_KERNEL=",
    "explicit operator override: an unknown kernel name must fail loudly, not fall back",
)];

/// Facade crates whose library code must not touch `std::sync` /
/// `core::sync::atomic` directly (check 3). The `sync.rs` facade file
/// itself is the single sanctioned exception.
const FACADE_CRATES: [&str; 2] = ["crates/exaloglog/src/", "crates/ell-store/src/"];

/// Decode-path files where narrowing casts need justification (check 4).
const DECODE_PATHS: [&str; 3] = [
    "crates/ell-codec/src/",
    "crates/ell-store/src/wire.rs",
    "crates/ell-store/src/window_wire.rs",
];

const NARROWING_CASTS: [&str; 6] = ["as u8", "as u16", "as u32", "as i8", "as i16", "as i32"];

#[derive(Debug)]
struct Finding {
    check: &'static str,
    file: String,
    line: usize,
    message: String,
}

/// One source line split into scannable code and its comment text.
struct ScanLine {
    /// Code with string/char literals blanked and comments removed.
    code: String,
    /// Comment text on this line (line comments and block-comment
    /// spans), used for justification-adjacency checks.
    comment: String,
    /// Whether the line lies inside a `#[cfg(test)]` module or item.
    in_test: bool,
}

/// Lexes a file into per-line code/comment splits and marks
/// `#[cfg(test)]` regions. Lexical, not a full parser: tracks block
/// comments, string/char/raw-string literals, and brace depth.
fn scan_lines(src: &str) -> Vec<ScanLine> {
    let mut out = Vec::new();
    let mut in_block_comment = 0usize; // nesting depth
    let mut depth = 0i64;
    // A pending `#[cfg(test)]` waiting for the item it gates; once the
    // item opens a brace we skip until depth returns to `open_depth`.
    let mut cfg_test_pending = false;
    let mut test_until_depth: Option<i64> = None;

    for raw in src.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut chars = raw.chars().peekable();
        let mut in_str = false;
        let mut in_char = false;
        let mut raw_hashes: Option<usize> = None;

        while let Some(c) = chars.next() {
            if in_block_comment > 0 {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment -= 1;
                } else if c == '/' && chars.peek() == Some(&'*') {
                    chars.next();
                    in_block_comment += 1;
                } else {
                    comment.push(c);
                }
                continue;
            }
            if let Some(hashes) = raw_hashes {
                // Inside r"…" / r#"…"# — ends at `"` followed by `hashes` #s.
                if c == '"' {
                    let mut seen = 0;
                    while seen < hashes && chars.peek() == Some(&'#') {
                        chars.next();
                        seen += 1;
                    }
                    if seen == hashes {
                        raw_hashes = None;
                        code.push(' ');
                    }
                }
                continue;
            }
            if in_str {
                if c == '\\' {
                    chars.next();
                } else if c == '"' {
                    in_str = false;
                    code.push(' ');
                }
                continue;
            }
            if in_char {
                if c == '\\' {
                    chars.next();
                } else if c == '\'' {
                    in_char = false;
                }
                continue;
            }
            match c {
                '/' if chars.peek() == Some(&'/') => {
                    comment.push_str(chars.collect::<String>().as_str());
                    break;
                }
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment += 1;
                }
                '"' => {
                    in_str = true;
                    code.push(' ');
                }
                'r' if chars.peek() == Some(&'"') || chars.peek() == Some(&'#') => {
                    // Possible raw string; count hashes then require `"`.
                    let mut hashes = 0;
                    while chars.peek() == Some(&'#') {
                        chars.next();
                        hashes += 1;
                    }
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        raw_hashes = Some(hashes);
                        code.push(' ');
                    } else {
                        code.push('r');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a lifetime is `'ident`
                    // with no closing quote nearby; treat `'x'` (one
                    // char or escape then `'`) as a literal.
                    let rest: String = chars.clone().collect();
                    let is_literal = rest.starts_with('\\')
                        || (rest.len() >= 2 && rest.as_bytes()[1] == b'\'');
                    if is_literal {
                        in_char = true;
                    } else {
                        code.push('\'');
                    }
                }
                _ => code.push(c),
            }
        }

        let depth_before = depth;
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }

        let mut in_test = test_until_depth.is_some();
        if let Some(until) = test_until_depth {
            if depth <= until && code.contains('}') {
                test_until_depth = None;
            }
        } else if cfg_test_pending {
            in_test = true;
            let trimmed = code.trim();
            if !trimmed.is_empty() {
                if depth > depth_before || code.contains('{') {
                    // Item opened a block; skip until it closes.
                    test_until_depth = Some(depth_before);
                    cfg_test_pending = false;
                } else if trimmed.ends_with(';') {
                    // Single-line gated item (`#[cfg(test)] use …;`).
                    cfg_test_pending = false;
                }
                // Otherwise (another attribute line) keep pending.
            }
        }
        if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
            cfg_test_pending = true;
            in_test = true;
        }

        out.push(ScanLine {
            code,
            comment,
            in_test,
        });
    }
    out
}

fn has_justification(lines: &[ScanLine], idx: usize, marker: &str) -> bool {
    // The flagged line itself, then the contiguous comment-only block
    // directly above it (a long justification may span many lines),
    // then a small window of mixed code/comment lines above that.
    if lines[idx].comment.contains(marker) {
        return true;
    }
    let mut i = idx;
    let mut budget = JUSTIFICATION_WINDOW;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        if l.comment.contains(marker) {
            return true;
        }
        if !l.code.trim().is_empty() {
            if budget == 0 {
                return false;
            }
            budget -= 1;
        }
    }
    false
}

/// Whether the integration-test tree or bench binaries contain this
/// path (checks 2/3/5 exempt them; check 1 and 4 still apply where the
/// path lists say so).
fn is_test_or_bin(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

fn check_file(rel: &str, src: &str, findings: &mut Vec<Finding>) {
    let lines = scan_lines(src);
    let in_facade_lib = FACADE_CRATES.iter().any(|p| rel.starts_with(p))
        && !rel.ends_with("/sync.rs")
        && !is_test_or_bin(rel);
    let in_decode_path = DECODE_PATHS.iter().any(|p| rel.starts_with(p));
    let unsafe_allowed = UNSAFE_ALLOWLIST.iter().any(|(p, _)| rel == *p);
    let in_library = rel.contains("/src/") && !rel.contains("/src/bin/") && !is_test_or_bin(rel);

    for (i, line) in lines.iter().enumerate() {
        let n = i + 1;
        let code = line.code.as_str();
        if line.in_test {
            continue;
        }

        // 1. ordering-comment
        if ATOMIC_ORDERINGS.iter().any(|o| code.contains(o))
            && !has_justification(&lines, i, "ordering:")
        {
            findings.push(Finding {
                check: "ordering-comment",
                file: rel.to_string(),
                line: n,
                message: "atomic Ordering use without an adjacent `// ordering:` justification"
                    .to_string(),
            });
        }

        // 2. unsafe-scope
        if contains_word(code, "unsafe") {
            if !unsafe_allowed {
                findings.push(Finding {
                    check: "unsafe-scope",
                    file: rel.to_string(),
                    line: n,
                    message: "`unsafe` outside the allowlisted AVX2 kernel / bench allocator files"
                        .to_string(),
                });
            } else if !has_justification(&lines, i, "SAFETY:") {
                findings.push(Finding {
                    check: "unsafe-scope",
                    file: rel.to_string(),
                    line: n,
                    message: "`unsafe` block without an adjacent `// SAFETY:` comment".to_string(),
                });
            }
        }

        // 3. sync-facade
        if in_facade_lib {
            let std_sync = code.contains("std::sync::") || code.contains("core::sync::atomic");
            let only_arc = std_sync
                && !code.contains("core::sync::atomic")
                && mentions_only_arc(code);
            if std_sync && !only_arc {
                findings.push(Finding {
                    check: "sync-facade",
                    file: rel.to_string(),
                    line: n,
                    message:
                        "direct std::sync/core::sync::atomic use in a facade crate; route through \
                         crate::sync so `--cfg ell_verify` model checking covers this site"
                            .to_string(),
                });
            }
        }

        // 4. narrowing-cast
        if in_decode_path
            && NARROWING_CASTS.iter().any(|c| contains_cast(code, c))
            && !has_justification(&lines, i, "cast:")
        {
            findings.push(Finding {
                check: "narrowing-cast",
                file: rel.to_string(),
                line: n,
                message:
                    "narrowing `as` cast in a wire-format decode path without a `// cast:` \
                     justification (prefer try_from)"
                        .to_string(),
            });
        }

        // 5. panic-free
        if in_library {
            let panicky = code.contains("panic!(") || code.contains(".unwrap()");
            if panicky {
                let allowed = PANIC_ALLOWLIST
                    .iter()
                    .any(|(p, must, _)| rel == *p && src.lines().nth(i).is_some_and(|l| l.contains(must)));
                if !allowed {
                    findings.push(Finding {
                        check: "panic-free",
                        file: rel.to_string(),
                        line: n,
                        message: "`panic!`/`.unwrap()` in library code; return Result or use \
                                  `.expect(\"invariant …\")`"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// `needle` as a whole word in `hay` (no identifier chars around it).
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !hay[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// A cast pattern like `as u32` must end at a word boundary so `as u32`
/// does not also match `as u320`/`as usize` prefixes.
fn contains_cast(hay: &str, cast: &str) -> bool {
    contains_word(hay, cast.strip_prefix("as ").unwrap_or(cast))
        && contains_word(hay, "as")
        && hay.contains(cast)
        && {
            // Verify the exact `as <ty>` sequence ends the type token.
            let mut start = 0;
            let mut ok = false;
            while let Some(pos) = hay[start..].find(cast) {
                let at = start + pos;
                let after = at + cast.len();
                let boundary = after >= hay.len()
                    || !hay[after..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if boundary {
                    ok = true;
                    break;
                }
                start = after;
            }
            ok
        }
}

/// True when every `std::sync::` path segment on the line names `Arc`
/// (or `Weak`), the scheduling-inert types exempt from the facade rule.
fn mentions_only_arc(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find("std::sync::") {
        let after = start + pos + "std::sync::".len();
        let rest = &code[after..];
        if !(rest.starts_with("Arc") || rest.starts_with("Weak")) {
            // `std::sync::{Arc, Mutex}` — look inside the brace list.
            if rest.starts_with('{') {
                let inner: &str = rest[1..].split('}').next().unwrap_or("");
                if !inner
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .all(|s| s.starts_with("Arc") || s.starts_with("Weak"))
                {
                    return false;
                }
            } else {
                return false;
            }
        }
        start = after;
    }
    true
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rel_str.starts_with("crates/vendor/") || rel_str.starts_with("target") {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let crates = root.join("crates");
    let mut files = Vec::new();
    collect_rs_files(&root, &crates, &mut files);
    files.sort();
    if files.is_empty() {
        eprintln!("xlint: no .rs files under {}", crates.display());
        return ExitCode::FAILURE;
    }

    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(path) {
            Ok(src) => check_file(&rel, &src, &mut findings),
            Err(e) => {
                eprintln!("xlint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Machine-readable report, uploaded as a CI artifact on failure.
    let mut json = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            json,
            "  {{\"check\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            f.check,
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        );
    }
    json.push_str("]\n");
    // Relative to the invoker's cwd: CI runs from the repo root and
    // uploads it as an artifact; the test harness points cwd at a
    // scratch directory so the repo stays clean.
    let report = PathBuf::from("xlint-findings.json");
    if let Err(e) = fs::write(&report, &json) {
        eprintln!("xlint: cannot write {}: {e}", report.display());
        return ExitCode::FAILURE;
    }

    for f in &findings {
        eprintln!("xlint[{}] {}:{}: {}", f.check, f.file, f.line, f.message);
    }
    if findings.is_empty() {
        eprintln!("xlint: clean ({} files scanned)", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xlint: {} finding(s) across {} files scanned — see {}",
            findings.len(),
            files.len(),
            report.display()
        );
        ExitCode::FAILURE
    }
}
