#!/usr/bin/env python3
"""Gate CI on the verdicts embedded in BENCH_*.json artifacts.

Usage:
    python3 ci/check_bench.py [--min-scaling X] FILE [FILE ...]

For every file the script enforces, in order:

1. **Verdict booleans.** Every *top-level* boolean field is treated as a
   law verdict and must be ``true`` — except the informational flags in
   ``INFORMATIONAL`` (``unreliable`` records measurement quality, not a
   law). New verdicts added to a bench are therefore gated automatically,
   with no CI edit.
2. **String verdicts.** ``"equivalence"`` must be ``"ok"`` when present.
3. **Scaling gate.** When the file carries ``scaling_factor``, it must be
   ``>= --min-scaling`` (default 2.0) — but only when the measurement is
   trustworthy: ``available_parallelism >= 4`` and ``unreliable`` is not
   set. Otherwise the gate is skipped with a printed notice, so runs on
   small machines degrade loudly instead of failing or lying. A report
   that carries ``scaling_factor`` but is missing (or mis-types)
   ``available_parallelism`` or ``scaling_threads`` is **malformed and
   fails** — a half-written report must never skip a gate silently.
4. **Tiering gates.** When the file carries ``warm_bytes_reduction``
   (the tiers bench), it must be ``>= --min-warm-reduction`` (default
   2.0: compressing the idle tail must at least halve resident memory),
   and ``hot_ingest_ratio`` must be ``<= --max-hot-ratio`` (default
   1.10: demoted neighbors must not tax the hot path).
5. **Kernel gates.** When the file carries ``kernel_equivalence`` (the
   registers bench), it must be ``"ok"`` — every scan kernel produced
   bytes identical to the scalar reference — and
   ``swar_merge_speedup_min`` must be ``>= --min-kernel-speedup``
   (default 1.2: the portable SWAR kernel must beat the scalar scan on
   the gated overlap/sparse merge shapes; the SWAR gate is used because
   it is portable and reliable even on a one-core CI machine, while
   AVX2 rows stay informational — emulated AVX2 can be slower than
   scalar).

One summary line is printed per file; the exit status is non-zero if any
check failed anywhere.
"""

import argparse
import json
import sys

# Top-level booleans that describe the measurement, not a law.
INFORMATIONAL = {"unreliable"}

MIN_PARALLELISM = 4


def _number(data: dict, key: str, failures: list) -> float | None:
    """Returns data[key] as a float, recording a failure on a bad type.

    ``bool`` is rejected explicitly: it is an ``int`` subclass, and a
    bench that writes ``"scaling_factor": true`` is broken, not passing.
    """
    value = data.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        failures.append(f"{key} is {value!r}, expected a number")
        return None
    return float(value)


def check_file(
    path: str,
    min_scaling: float,
    min_warm_reduction: float,
    max_hot_ratio: float,
    min_kernel_speedup: float,
) -> bool:
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL {path}: unreadable ({err})")
        return False
    if not isinstance(data, dict):
        print(f"FAIL {path}: top level is not a JSON object")
        return False

    failures = []

    verdicts = {
        key: value
        for key, value in data.items()
        if isinstance(value, bool) and key not in INFORMATIONAL
    }
    for key, value in sorted(verdicts.items()):
        if value is not True:
            failures.append(f"verdict {key} is false")

    equivalence = data.get("equivalence")
    if equivalence is not None and equivalence != "ok":
        failures.append(f'equivalence is "{equivalence}", expected "ok"')

    scaling_note = ""
    factor = _number(data, "scaling_factor", failures)
    if factor is not None:
        # A scaling report without its provenance fields is malformed:
        # treating a missing core count as 0 would silently skip the
        # gate, which is exactly how a broken bench sneaks past CI.
        cores = data.get("available_parallelism")
        if isinstance(cores, bool) or not isinstance(cores, int):
            failures.append(
                f"scaling_factor present but available_parallelism is "
                f"{cores!r}, expected an integer"
            )
            cores = None
        threads = data.get("scaling_threads")
        if isinstance(threads, bool) or not isinstance(threads, int):
            failures.append(
                f"scaling_factor present but scaling_threads is "
                f"{threads!r}, expected an integer"
            )
            threads = None
        unreliable = data.get("unreliable", False)
        if not isinstance(unreliable, bool):
            failures.append(f"unreliable is {unreliable!r}, expected a boolean")
            unreliable = False
        if cores is None or threads is None:
            pass  # already failed above; no gate decision to make
        elif unreliable:
            scaling_note = (
                f"scaling gate SKIPPED: marked unreliable "
                f"(thread counts clamped, {cores} cores)"
            )
        elif cores < MIN_PARALLELISM:
            scaling_note = (
                f"scaling gate SKIPPED: only {cores} cores "
                f"(need >= {MIN_PARALLELISM})"
            )
        elif factor < min_scaling:
            failures.append(
                f"scaling_factor {factor:.2f} at {threads} threads "
                f"is below the {min_scaling:.1f} gate"
            )
        else:
            scaling_note = f"scaling {factor:.2f}x at {threads} threads (gate {min_scaling:.1f})"

    tier_note = ""
    warm_reduction = _number(data, "warm_bytes_reduction", failures)
    if warm_reduction is not None:
        hot_ratio = _number(data, "hot_ingest_ratio", failures)
        if warm_reduction < min_warm_reduction:
            failures.append(
                f"warm_bytes_reduction {warm_reduction:.2f} is below "
                f"the {min_warm_reduction:.1f} gate"
            )
        if hot_ratio is not None and hot_ratio > max_hot_ratio:
            failures.append(
                f"hot_ingest_ratio {hot_ratio:.3f} exceeds the {max_hot_ratio:.2f} gate"
            )
        if not failures:
            overall = data.get("tiered_bytes_reduction")
            tier_note = f"warm reduction {warm_reduction:.2f}x (gate {min_warm_reduction:.1f})"
            if overall is not None:
                tier_note += f", tiered {overall:.2f}x"
            if hot_ratio is not None:
                tier_note += f", hot ratio {hot_ratio:.3f} (gate {max_hot_ratio:.2f})"

    kernel_note = ""
    kernel_equivalence = data.get("kernel_equivalence")
    if kernel_equivalence is not None:
        if kernel_equivalence != "ok":
            failures.append(
                f'kernel_equivalence is "{kernel_equivalence}", expected "ok"'
            )
        swar_min = _number(data, "swar_merge_speedup_min", failures)
        if swar_min is None:
            # Bad type already failed in _number; absence fails here.
            if "swar_merge_speedup_min" not in data:
                failures.append(
                    "kernel_equivalence present but swar_merge_speedup_min missing"
                )
        elif swar_min < min_kernel_speedup:
            failures.append(
                f"swar_merge_speedup_min {swar_min:.3f} is below "
                f"the {min_kernel_speedup:.2f} gate"
            )
        else:
            kernel_note = (
                f"kernel equivalence ok, SWAR >= {swar_min:.2f}x "
                f"(gate {min_kernel_speedup:.2f})"
            )

    name = data.get("bench", "?")
    if failures:
        print(f"FAIL {path} (bench {name}): " + "; ".join(failures))
        return False
    summary = f"OK   {path} (bench {name}): {len(verdicts)} verdict(s) true"
    if equivalence == "ok":
        summary += ", equivalence ok"
    flatness = data.get("query_flatness_ratio")
    if flatness is not None:
        bound = data.get("query_flatness_bound", "?")
        summary += f", query flatness {flatness:.2f}x (bound {bound}x)"
    if kernel_note:
        summary += f"; {kernel_note}"
    if tier_note:
        summary += f"; {tier_note}"
    if scaling_note:
        summary += f"; {scaling_note}"
    print(summary)
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument("--min-scaling", type=float, default=2.0)
    parser.add_argument("--min-warm-reduction", type=float, default=2.0)
    parser.add_argument("--max-hot-ratio", type=float, default=1.10)
    parser.add_argument("--min-kernel-speedup", type=float, default=1.2)
    opts = parser.parse_args()
    ok = True
    for path in opts.files:
        ok &= check_file(
            path,
            opts.min_scaling,
            opts.min_warm_reduction,
            opts.max_hot_ratio,
            opts.min_kernel_speedup,
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
