//! Umbrella crate of the ExaLogLog reproduction workspace.
//!
//! Re-exports the member crates so the examples under `examples/` and the
//! cross-crate integration tests under `tests/` can address the whole
//! system through one dependency. Library users should depend on the
//! individual crates directly:
//!
//! * [`ell_core`] — the `DistinctCounter`/`Sketch` trait layer every
//!   sketch type implements;
//! * [`exaloglog`] — the sketch itself (start at `exaloglog::ExaLogLog`);
//! * [`ell_hash`] — 64-bit hash functions;
//! * [`ell_bitpack`] — packed register storage;
//! * [`ell_numerics`] — special functions for the theory module;
//! * [`ell_baselines`] — comparison sketches (HLL + sparse coupon mode,
//!   ULL, EHLL, HyperMinHash, PCSA + CPC serialization, HLLL, …);
//! * [`ell_sim`] — the error-simulation harness and workload generators;
//! * [`ell_store`] — the sharded keyed sketch store (key →
//!   `AdaptiveExaLogLog` with an atomic hot path).

#![forbid(unsafe_code)]

pub use ell_baselines;
pub use ell_bitpack;
pub use ell_core;
pub use ell_hash;
pub use ell_numerics;
pub use ell_sim;
pub use ell_store;
pub use exaloglog;
